"""End-to-end tracing: api.sort, MergePass spans, cluster, CLI, faults."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.api import RunOptions
from repro.errors import ConfigError
from repro.trace import Tracer, dumps_chrome_trace


class TestApiSort:
    def test_trace_path_writes_chrome_json(self, tmp_path):
        path = str(tmp_path / "sort.json")
        result = api.sort(RunOptions(records=2_000, trace=path))
        assert "tracer" in result.extras
        doc = json.loads(open(path).read())
        assert doc["traceEvents"]

    def test_trace_rejects_bad_type(self):
        with pytest.raises(ConfigError):
            api.sort(RunOptions(records=1_000, trace=123))

    def test_mergepass_trace_has_required_content(self, tmp_path):
        """Acceptance criteria: >= one span per sort phase, per-op device
        events with byte/class attribution, counter tracks for read bw /
        write bw / DRAM."""
        tracer = Tracer()
        result = api.sort(
            RunOptions(records=8_000, system="wiscsort-merge", trace=tracer)
        )
        assert result.extras["tracer"] is tracer
        names = set(tracer.span_names())
        assert "phase:run-generation" in names
        assert "run" in names
        assert any(n.startswith("phase:") and "merge" in n for n in names)
        assert any(n.startswith("sort:wiscsort") for n in names)
        io_ops = [rec for rec in tracer.ops if rec["kind"] == "io"]
        assert io_ops
        assert all(
            rec["bytes"] >= 0 and rec["direction"] in ("read", "write")
            for rec in io_ops
        )
        assert {rec["phase"] for rec in io_ops} >= {
            "run", "phase:final-merge"
        }
        series = {(track, name) for _, track, name, _ in tracer.counters}
        assert (Tracer.MAIN_TRACK, "read_bw") in series
        assert (Tracer.MAIN_TRACK, "write_bw") in series
        assert (Tracer.MAIN_TRACK, "dram_used") in series

    def test_traced_results_match_untraced(self):
        base = RunOptions(records=4_000, system="wiscsort-merge")
        untraced = api.sort(base)
        traced = api.sort(base.replace(trace=Tracer()))
        assert traced.total_time == untraced.total_time
        assert traced.internal_read == untraced.internal_read
        assert traced.internal_written == untraced.internal_written
        assert traced.phases == untraced.phases


class TestDeterminism:
    def test_same_seed_runs_export_byte_identical_json(self):
        """Satellite: piggyback trace capture on verify_determinism."""
        from repro.analysis.sanitizer import verify_determinism

        tracers = []

        def run(san):
            tracer = Tracer()
            tracers.append(tracer)
            return api.sort(RunOptions(
                records=3_000,
                system="wiscsort-merge",
                seed=7,
                sanitizer=san,
                trace=tracer,
            ))

        report = verify_determinism(run, runs=2)
        assert report.ok
        dumps = [dumps_chrome_trace(t) for t in tracers]
        assert dumps[0] == dumps[1]


class TestFaultTracing:
    def test_transient_fault_emits_fault_and_retry_instants(self):
        tracer = Tracer()
        api.sort(RunOptions(records=2_000, faults="transient@op:2", trace=tracer))
        names = [ev["name"] for ev in tracer.instants]
        assert "fault" in names
        assert "retry" in names
        fault = next(ev for ev in tracer.instants if ev["name"] == "fault")
        assert fault["track"] == "faults"
        assert fault["args"]["transient"] is True


def _traced_cluster(jobs=3, shards=2):
    from repro.cluster import Cluster, JobScheduler

    cluster = Cluster(shards=shards, dram_budget=64 << 20)
    tracer = cluster.install_tracer()
    scheduler = JobScheduler(cluster, policy="fifo")
    for j in range(jobs):
        scheduler.submit(
            f"job{j:02d}", n_records=2_000, seed=j, tenant=f"t{j % 2}"
        )
    scheduler.run()
    return cluster, tracer


class TestClusterTracing:
    def test_scheduler_spans_and_queue_depth(self):
        cluster, tracer = _traced_cluster()
        names = set(tracer.span_names())
        assert {"service:job00", "service:job01", "service:job02"} <= names
        series = {(track, name) for _, track, name, _ in tracer.counters}
        assert ("scheduler", "queue_depth") in series
        assert ("cluster", "dram_used") in series
        admits = [ev for ev in tracer.instants if ev["name"] == "admit"]
        assert len(admits) == 3

    def test_ops_attribute_to_shard_tracks(self):
        cluster, tracer = _traced_cluster()
        tracks = {rec["track"] for rec in tracer.ops if rec["kind"] == "io"}
        assert tracks == {shard.domain for shard in cluster.shards}
        series = {(track, name) for _, track, name, _ in tracer.counters}
        for shard in cluster.shards:
            assert (shard.domain, "read_bw") in series


class TestClusterCounters:
    def test_collect_cluster_counters_namespaces_shards(self):
        """Satellite: per-shard counter namespacing on a Cluster."""
        from repro.perf import collect_cluster_counters

        cluster, _ = _traced_cluster()
        counters = collect_cluster_counters(cluster)
        assert counters["ops_completed"] > 0
        for shard in cluster.shards:
            assert counters[f"{shard.domain}.device_bytes_read"] > 0
            assert f"{shard.domain}.rate_cache_hit_rate" in counters
        shared = [k for k in counters if "." not in k]
        assert "sim_seconds" in shared

    def test_snapshot_cluster_labels_shards(self):
        from repro.trace import snapshot_cluster

        cluster, _ = _traced_cluster()
        snap = snapshot_cluster(cluster).snapshot()
        assert snap["engine_steps"] > 0
        assert any("shard=shard0" in k for k in snap)
        assert snap["dram_peak_bytes"] > 0.0


class TestCli:
    def test_sort_trace_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "cli.json")
        rc = main(
            [
                "sort", "--records", "2000", "--trace", path,
                "--trace-rollup",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "trace  :" in out
        assert "phase rollup" in out
        assert json.loads(open(path).read())["traceEvents"]

    def test_trace_report_command(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "cli.json")
        assert main(["sort", "--records", "2000", "--trace", path]) == 0
        capsys.readouterr()
        assert main(["trace-report", path]) == 0
        out = capsys.readouterr().out
        assert "trace report" in out
        assert "span" in out

    def test_trace_report_missing_file(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(["trace-report", str(tmp_path / "absent.json")])
        assert rc == 2
        assert "trace-report:" in capsys.readouterr().err

    def test_cluster_trace_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "cluster.json")
        rc = main(
            [
                "cluster", "--shards", "2", "--jobs", "2",
                "--records-per-job", "2000", "--trace", path,
            ]
        )
        assert rc == 0
        assert "trace  :" in capsys.readouterr().out
        doc = json.loads(open(path).read())
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert "scheduler" in names
