"""Tests for the sim-time tracer: spans, op attribution, counters."""

from __future__ import annotations

from repro.device.profile import Pattern
from repro.machine import Machine
from repro.trace import Tracer


def _read_write_job(machine, nbytes=1 << 20):
    with machine.trace_span("phase:demo", records=2):
        yield machine.io("read", Pattern.SEQ, nbytes, tag="r", threads=4)
        yield machine.io("write", Pattern.SEQ, nbytes, tag="w", threads=4)


class TestInstall:
    def test_install_tracer_hooks_everything(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()
        assert isinstance(tracer, Tracer)
        assert machine.tracer is tracer
        assert machine.engine.tracer is tracer
        assert machine.engine.fluid.tracer is tracer
        assert machine.dram.on_change is not None

    def test_trace_span_without_tracer_is_noop(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            with machine.trace_span("phase:x"):
                yield machine.io("read", Pattern.SEQ, 4096, tag="r")

        machine.run(job())
        assert machine.tracer is None

    def test_reboot_reattaches(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()
        machine.run(_read_write_job(machine))
        n_ops = len(tracer.ops)
        machine.reboot()
        assert machine.engine.tracer is tracer
        machine.run(_read_write_job(machine))
        assert len(tracer.ops) > n_ops


class TestSpans:
    def test_span_nesting_and_parenting(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()
        machine.run(_read_write_job(machine), name="demo")
        spans = {s.name: s for s in tracer.spans}
        assert "phase:demo" in spans
        demo = spans["phase:demo"]
        assert demo.t1 is not None and demo.t1 > demo.t0
        assert demo.args == {"records": 2}

    def test_process_span_nests_under_main_span(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()

        def job():
            with tracer.span("root", cat="sort"):
                yield from _read_write_job(machine)

        machine.run(job())
        spans = {s.name: s for s in tracer.spans}
        assert spans["phase:demo"].parent == spans["root"].sid

    def test_add_complete_span_records_endpoints(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()
        span = tracer.add_complete_span(
            "queued:j0", 1.0, 2.5, cat="queue", track="scheduler", tenant="t0"
        )
        assert span.t0 == 1.0 and span.t1 == 2.5
        assert span.duration == 1.5
        assert tracer.spans[-1] is span


class TestOpAttribution:
    def test_io_ops_carry_class_bytes_and_phase(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()
        machine.run(_read_write_job(machine, nbytes=1 << 20))
        io_ops = [rec for rec in tracer.ops if rec["kind"] == "io"]
        assert len(io_ops) == 2
        read, write = io_ops
        assert read["direction"] == "read" and write["direction"] == "write"
        assert read["bytes"] == float(1 << 20)
        assert read["phase"] == "phase:demo"
        assert read["amplification"] >= 1.0
        assert read["interference"] >= 1.0
        assert read["t1"] is not None and read["t1"] > read["t0"]

    def test_op_ids_are_per_tracer(self, pmem):
        """Exported ids must restart at 1 for every tracer (the global
        FluidOp sequence does not reset between runs in one process)."""
        for _ in range(2):
            machine = Machine(profile=pmem)
            tracer = machine.install_tracer()
            machine.run(_read_write_job(machine))
            assert tracer.ops[0]["oid"] == 1

    def test_rollup_rows_group_by_phase_class(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()
        machine.run(_read_write_job(machine))
        rows = tracer.rollup_rows()
        keys = {(r[0], r[2]) for r in rows}
        assert ("phase:demo", "read/seq") in keys
        assert ("phase:demo", "write/seq") in keys


class TestCounters:
    def test_bandwidth_and_dram_tracks_exist(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()

        def job():
            machine.dram.allocate(4096)
            yield machine.io("read", Pattern.SEQ, 1 << 20, tag="r")
            machine.dram.free(4096)

        machine.run(job())
        series = {(track, name) for _, track, name, _ in tracer.counters}
        assert (Tracer.MAIN_TRACK, "read_bw") in series
        assert (Tracer.MAIN_TRACK, "dram_used") in series

    def test_counter_samples_are_change_suppressed(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()
        tracer.counter_sample("x", "s", 1.0, t=0.0)
        tracer.counter_sample("x", "s", 1.0, t=1.0)
        tracer.counter_sample("x", "s", 2.0, t=2.0)
        rows = [c for c in tracer.counters if c[1] == "x"]
        assert [v for _, _, _, v in rows] == [1.0, 2.0]


class TestObserveOnly:
    def test_traced_run_is_bit_identical_to_untraced(self, pmem):
        results = []
        for with_trace in (False, True):
            machine = Machine(profile=pmem)
            if with_trace:
                machine.install_tracer()
            machine.run(_read_write_job(machine))
            results.append(
                (
                    machine.now,
                    machine.stats.bytes_read_internal,
                    machine.stats.bytes_written_internal,
                )
            )
        assert results[0] == results[1]

    def test_detail_mode_records_sched_events_without_drift(self, pmem):
        base = Machine(profile=pmem)
        base.run(_read_write_job(base))
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer(detail=True)
        machine.run(_read_write_job(machine))
        assert machine.now == base.now
        names = {ev["name"] for ev in tracer.instants}
        assert "spawn" in names


class TestCounterTerminalFlush:
    """Regression: counter tracks must not stop short of the run's end.

    Samples are change-suppressed, so a track whose value went flat
    before the end of the run used to miss a final sample; closing the
    root span now flushes a terminal sample for every counter track.
    """

    def test_every_track_gets_a_sample_at_root_close(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()
        with tracer.span("root", cat="sort"):
            machine.run(_read_write_job(machine))
        root = next(s for s in tracer.spans if s.name == "root")
        assert root.t1 is not None and root.t1 > 0
        last_t = {}
        for t, track, name, _value in tracer.counters:
            last_t[(track, name)] = t
        assert last_t  # bandwidth + dram tracks exist
        for key, t in last_t.items():
            assert t == root.t1, f"{key} stops at {t}, run ends {root.t1}"

    def test_flush_repeats_last_value_not_a_new_one(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()
        with tracer.span("root", cat="sort"):
            machine.run(_read_write_job(machine))
        series = [
            (t, v) for t, trk, name, v in tracer.counters
            if name == "dram_used"
        ]
        # dram_used went back to its resting value before the run ended;
        # the terminal sample re-states that value at the end time.
        assert series[-1][1] == series[-2][1]

    def test_no_duplicate_flush_at_same_time(self, pmem):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer()
        with tracer.span("root", cat="sort"):
            pass
        # Install samples dram_used=0 at t=0; the root closes at t=0 too,
        # so the terminal flush must not append a same-time duplicate.
        assert len(tracer.counters) == 1
