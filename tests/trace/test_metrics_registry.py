"""Tests for the typed metrics registry and its bridge snapshots."""

from __future__ import annotations

import pytest

from repro.device.profile import Pattern
from repro.machine import Machine
from repro.trace import MetricsRegistry, snapshot_machine, tracer_histograms
from repro.trace.metrics import Counter, Gauge, Histogram


class TestInstruments:
    def test_counter_rejects_decrease(self):
        c = Counter("c")
        c.inc(2.0)
        with pytest.raises(ValueError):
            c.inc(-1.0)
        assert c.sample() == {"c": 2.0}

    def test_gauge_moves_both_ways(self):
        g = Gauge("g", {"shard": "shard0"})
        g.set(5.0)
        g.add(-2.0)
        assert g.sample() == {"g{shard=shard0}": 3.0}

    def test_histogram_buckets_and_mean(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(105.5 / 3)
        sample = h.sample()
        assert sample["h.count"] == 3.0
        assert sample["h.le_1.0"] == 1.0
        assert sample["h.le_10.0"] == 2.0
        assert sample["h.le_inf"] == 3.0

    def test_histogram_requires_sorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("ops", {"shard": "s0"})
        b = reg.counter("ops", {"shard": "s0"})
        assert a is b
        assert len(reg) == 1
        assert "ops{shard=s0}" in reg

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_labels_render_sorted(self):
        reg = MetricsRegistry()
        reg.counter("m", {"b": "2", "a": "1"}).inc()
        assert list(reg.snapshot()) == ["m{a=1,b=2}"]

    def test_snapshot_and_diff(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(3)
        before = reg.snapshot()
        reg.counter("ops").inc(2)
        reg.gauge("depth").set(7.0)
        delta = reg.diff(before)
        assert delta == {"ops": 2.0, "depth": 7.0}

    def test_render_lists_every_sample(self):
        reg = MetricsRegistry()
        assert reg.render() == "(no metrics registered)"
        reg.counter("ops").inc()
        assert "ops" in reg.render()


class TestBridges:
    def _run(self, pmem, trace=False):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer() if trace else None

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 20, tag="r")
            yield machine.io("write", Pattern.SEQ, 1 << 20, tag="w")

        machine.run(job())
        return machine, tracer

    def test_snapshot_machine_unifies_surfaces(self, pmem):
        machine, _ = self._run(pmem)
        snap = snapshot_machine(machine).snapshot()
        assert snap["engine_steps"] > 0
        assert snap["device_bytes_read_internal"] >= float(1 << 20)
        assert snap["device_busy_seconds{tag=r}"] > 0.0
        assert snap["dram_peak_bytes"] == 0.0
        assert not any(k.startswith("fault_") for k in snap)

    def test_snapshot_machine_includes_faults_when_armed(self, pmem):
        from repro.faults import FaultPlan

        machine = Machine(profile=pmem)
        machine.install_faults(FaultPlan())

        def job():
            yield machine.io("read", Pattern.SEQ, 4096, tag="r")

        machine.run(job())
        snap = snapshot_machine(machine).snapshot()
        assert "fault_faults_injected" in snap

    def test_tracer_histograms(self, pmem):
        _, tracer = self._run(pmem, trace=True)
        snap = tracer_histograms(tracer).snapshot()
        assert snap["op_seconds{kind=io,track=machine}.count"] == 2.0
        assert snap["op_bytes{direction=read,track=machine}.sum"] == float(
            1 << 20
        )
