"""Tests for the typed metrics registry and its bridge snapshots."""

from __future__ import annotations

import pytest

from repro.device.profile import Pattern
from repro.machine import Machine
from repro.trace import MetricsRegistry, snapshot_machine, tracer_histograms
from repro.trace.metrics import Counter, Gauge, Histogram


class TestInstruments:
    def test_counter_rejects_decrease(self):
        c = Counter("c")
        c.inc(2.0)
        with pytest.raises(ValueError):
            c.inc(-1.0)
        assert c.sample() == {"c": 2.0}

    def test_gauge_moves_both_ways(self):
        g = Gauge("g", {"shard": "shard0"})
        g.set(5.0)
        g.add(-2.0)
        assert g.sample() == {"g{shard=shard0}": 3.0}

    def test_histogram_buckets_and_mean(self):
        h = Histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 5.0, 100.0):
            h.observe(v)
        assert h.count == 3
        assert h.mean == pytest.approx(105.5 / 3)
        sample = h.sample()
        assert sample["h.count"] == 3.0
        assert sample["h.le_1.0"] == 1.0
        assert sample["h.le_10.0"] == 2.0
        assert sample["h.le_inf"] == 3.0

    def test_histogram_requires_sorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(10.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("ops", {"shard": "s0"})
        b = reg.counter("ops", {"shard": "s0"})
        assert a is b
        assert len(reg) == 1
        assert "ops{shard=s0}" in reg

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_labels_render_sorted(self):
        reg = MetricsRegistry()
        reg.counter("m", {"b": "2", "a": "1"}).inc()
        assert list(reg.snapshot()) == ["m{a=1,b=2}"]

    def test_snapshot_and_diff(self):
        reg = MetricsRegistry()
        reg.counter("ops").inc(3)
        before = reg.snapshot()
        reg.counter("ops").inc(2)
        reg.gauge("depth").set(7.0)
        delta = reg.diff(before)
        assert delta == {"ops": 2.0, "depth": 7.0}

    def test_render_lists_every_sample(self):
        reg = MetricsRegistry()
        assert reg.render() == "(no metrics registered)"
        reg.counter("ops").inc()
        assert "ops" in reg.render()


class TestBridges:
    def _run(self, pmem, trace=False):
        machine = Machine(profile=pmem)
        tracer = machine.install_tracer() if trace else None

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 20, tag="r")
            yield machine.io("write", Pattern.SEQ, 1 << 20, tag="w")

        machine.run(job())
        return machine, tracer

    def test_snapshot_machine_unifies_surfaces(self, pmem):
        machine, _ = self._run(pmem)
        snap = snapshot_machine(machine).snapshot()
        assert snap["engine_steps"] > 0
        assert snap["device_bytes_read_internal"] >= float(1 << 20)
        assert snap["device_busy_seconds{tag=r}"] > 0.0
        assert snap["dram_peak_bytes"] == 0.0
        assert not any(k.startswith("fault_") for k in snap)

    def test_snapshot_machine_includes_faults_when_armed(self, pmem):
        from repro.faults import FaultPlan

        machine = Machine(profile=pmem)
        machine.install_faults(FaultPlan())

        def job():
            yield machine.io("read", Pattern.SEQ, 4096, tag="r")

        machine.run(job())
        snap = snapshot_machine(machine).snapshot()
        assert "fault_faults_injected" in snap

    def test_tracer_histograms(self, pmem):
        _, tracer = self._run(pmem, trace=True)
        snap = tracer_histograms(tracer).snapshot()
        assert snap["op_seconds{kind=io,track=machine}.count"] == 2.0
        assert snap["op_bytes{direction=read,track=machine}.sum"] == float(
            1 << 20
        )


class TestPercentileEdgeCases:
    def test_empty_histogram_is_zero(self):
        h = Histogram("x")
        assert h.percentile(0.0) == 0.0
        assert h.percentile(50.0) == 0.0
        assert h.percentile(99.9) == 0.0

    def test_out_of_range_raises(self):
        h = Histogram("x")
        with pytest.raises(ValueError):
            h.percentile(-0.1)
        with pytest.raises(ValueError):
            h.percentile(100.1)

    def test_single_sample_returns_that_value(self):
        h = Histogram("x")
        h.observe(0.005)
        for q in (0.0, 1.0, 50.0, 99.9, 100.0):
            assert h.percentile(q) == 0.005

    def test_all_samples_in_one_bucket_clamp_to_extrema(self):
        h = Histogram("x", buckets=(1.0, 10.0))
        for v in (2.0, 4.0, 9.0):
            h.observe(v)
        # Interpolation is clamped to the exact observed [vmin, vmax],
        # never the raw bucket edges (1.0, 10.0).
        assert h.percentile(100.0) == 9.0
        assert h.percentile(0.0) >= 2.0
        assert 2.0 <= h.percentile(50.0) <= 9.0

    def test_p999_interpolates_at_bucket_boundary(self):
        h = Histogram("x", buckets=(1.0, 2.0, 3.0))
        for _ in range(999):
            h.observe(1.0)
        h.observe(3.0)
        # rank(99.9) sits a float ulp past the 999 samples in the first
        # bucket, so the estimate lands on the next bucket's lower edge.
        assert h.percentile(99.9) == pytest.approx(2.0)
        # Half a sample further interpolates inside the last bucket:
        # lo = previous edge (2.0), hi = vmax (3.0), frac = 0.5.
        assert h.percentile(99.95) == pytest.approx(2.5)
        # And everything below the boundary stays in the first bucket.
        assert h.percentile(99.0) == 1.0

    def test_overflow_bucket_interpolates_to_true_max(self):
        h = Histogram("x", buckets=(1.0,))
        h.observe(5.0)
        h.observe(7.0)
        assert h.percentile(100.0) == 7.0
        assert 1.0 <= h.percentile(50.0) <= 7.0


class TestWindowedSeries:
    def test_rows_bucket_by_sim_time(self):
        from repro.trace.metrics import WindowedSeries

        s = WindowedSeries("latency", window=1.0)
        s.observe(0.1, 0.005)
        s.observe(0.9, 0.005)
        s.observe(1.5, 0.020)
        rows = s.rows()
        assert len(s) == 2 and len(rows) == 2
        assert rows[0]["t0"] == 0.0 and rows[0]["t1"] == 1.0
        assert rows[0]["count"] == 2
        assert rows[0]["mean"] == pytest.approx(0.005)
        assert rows[1]["count"] == 1
        assert "p50" in rows[0] and "p99" in rows[0]

    def test_custom_percentile_key_rendering(self):
        from repro.trace.metrics import WindowedSeries

        s = WindowedSeries("latency", window=1.0)
        s.observe(0.5, 0.01)
        row = s.rows(percentiles=(99.9,))[0]
        assert "p99_9" in row

    def test_window_must_be_positive(self):
        from repro.trace.metrics import WindowedSeries

        with pytest.raises(ValueError):
            WindowedSeries("x", window=0.0)

    def test_deterministic_rows(self):
        from repro.trace.metrics import WindowedSeries

        def build():
            s = WindowedSeries("x", window=0.5)
            for i in range(20):
                s.observe(i * 0.13, (i % 7) * 1e-3)
            return s.rows()

        assert build() == build()


class TestCounterWindows:
    def test_step_function_integration(self):
        from repro.trace.metrics import counter_windows

        counters = [
            (0.0, "m", "queue", 2.0),
            (1.0, "m", "queue", 4.0),
            (0.0, "m", "other", 99.0),
        ]
        rows = counter_windows(counters, "m", "queue", 1.0, t_end=2.0)
        assert len(rows) == 2
        assert rows[0]["avg"] == pytest.approx(2.0)
        assert rows[0]["max"] == 2.0
        assert rows[1]["avg"] == pytest.approx(4.0)

    def test_sample_spanning_windows_is_split(self):
        from repro.trace.metrics import counter_windows

        counters = [(0.5, "m", "q", 10.0)]
        rows = counter_windows(counters, "m", "q", 1.0, t_end=1.5)
        assert [r["t0"] for r in rows] == [0.0, 1.0]
        # Time before the first sample counts as level zero, so the
        # first window averages 10.0 over half its span.
        assert rows[0]["avg"] == pytest.approx(5.0)
        assert rows[1]["avg"] == pytest.approx(10.0)

    def test_missing_track_is_empty(self):
        from repro.trace.metrics import counter_windows

        assert counter_windows([], "m", "q", 1.0) == []
        assert counter_windows([(0.0, "x", "q", 1.0)], "m", "q", 1.0) == []

    def test_window_must_be_positive(self):
        from repro.trace.metrics import counter_windows

        with pytest.raises(ValueError):
            counter_windows([(0.0, "m", "q", 1.0)], "m", "q", 0.0)
