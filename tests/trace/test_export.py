"""Tests for trace exporters: Chrome JSON, JSONL, text rollups."""

from __future__ import annotations

import json

import pytest

from repro.device.profile import Pattern
from repro.machine import Machine
from repro.trace import (
    Tracer,
    chrome_trace_events,
    dumps_chrome_trace,
    load_chrome_trace,
    render_phase_rollup,
    render_trace_report,
    spans_jsonl,
    write_chrome_trace,
)


def _traced_run(pmem):
    machine = Machine(profile=pmem)
    tracer = machine.install_tracer()

    def job():
        with machine.trace_span("phase:demo"):
            yield machine.io("read", Pattern.SEQ, 1 << 20, tag="r")
            yield machine.io("write", Pattern.SEQ, 1 << 20, tag="w")

    machine.run(job())
    return machine, tracer


class TestChromeTrace:
    def test_event_structure(self, pmem):
        _, tracer = _traced_run(pmem)
        events = chrome_trace_events(tracer)
        phases = {ev["ph"] for ev in events}
        assert {"M", "X", "C"} <= phases
        meta = [ev for ev in events if ev["ph"] == "M"]
        assert events[: len(meta)] == meta, "metadata events come first"
        names = {
            ev["args"]["name"] for ev in meta if ev["name"] == "process_name"
        }
        assert Tracer.MAIN_TRACK in names

    def test_counter_events_use_tid_zero(self, pmem):
        _, tracer = _traced_run(pmem)
        for ev in chrome_trace_events(tracer):
            if ev["ph"] == "C":
                assert ev["tid"] == 0
                assert "value" in ev["args"]

    def test_span_and_op_events_carry_args(self, pmem):
        _, tracer = _traced_run(pmem)
        events = chrome_trace_events(tracer)
        ops = [ev for ev in events if ev.get("cat", "").startswith("op.")]
        assert ops, "per-op device events must be exported"
        io = [ev for ev in ops if ev["cat"] == "op.io"]
        assert all("class" in ev["args"] and "bytes" in ev["args"] for ev in io)
        assert any(ev["args"].get("phase") == "phase:demo" for ev in io)

    def test_timestamps_are_microseconds(self, pmem):
        machine, tracer = _traced_run(pmem)
        events = chrome_trace_events(tracer)
        latest = max(
            ev.get("ts", 0.0) + ev.get("dur", 0.0) for ev in events
        )
        assert latest == pytest.approx(machine.now * 1e6)

    def test_dumps_is_deterministic_across_runs(self, pmem):
        dumps = [dumps_chrome_trace(_traced_run(pmem)[1]) for _ in range(2)]
        assert dumps[0] == dumps[1]

    def test_write_and_load_roundtrip(self, pmem, tmp_path):
        _, tracer = _traced_run(pmem)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(tracer, path)
        doc = load_chrome_trace(path)
        assert doc["otherData"]["clock"] == "simulated"
        assert doc["traceEvents"]

    def test_load_rejects_non_trace_json(self, tmp_path):
        path = tmp_path / "not_trace.json"
        path.write_text(json.dumps({"foo": 1}))
        with pytest.raises(ValueError):
            load_chrome_trace(str(path))


class TestTextExports:
    def test_spans_jsonl_parses_per_line(self, pmem):
        _, tracer = _traced_run(pmem)
        lines = spans_jsonl(tracer).splitlines()
        assert len(lines) == len(tracer.spans)
        assert all(json.loads(line)["name"] for line in lines)

    def test_phase_rollup_tree_and_traffic(self, pmem):
        _, tracer = _traced_run(pmem)
        text = render_phase_rollup(tracer)
        assert "phase:demo" in text
        assert "traffic by phase x class x track" in text
        assert "read/seq" in text

    def test_phase_rollup_empty(self):
        assert "(no spans recorded)" in render_phase_rollup(Tracer())

    def test_trace_report_sections(self, pmem, tmp_path):
        _, tracer = _traced_run(pmem)
        path = str(tmp_path / "trace.json")
        write_chrome_trace(tracer, path)
        report = render_trace_report(load_chrome_trace(path), path)
        assert "phase:demo" in report
        assert "read/seq" in report
        assert "machine/read_bw" in report
