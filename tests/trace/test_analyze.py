"""Tests for the critical-path analyzer, what-if projector and trace-diff."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import api
from repro.core.base import SortConfig
from repro.core.wiscsort import WiscSort
from repro.device.curves import ScalingCurve
from repro.device.profiles import bard_device_profile
from repro.errors import ConfigError, SchemaMismatchError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.trace import (
    CATEGORIES,
    CriticalPath,
    Tracer,
    analyze_tracer,
    diff_reports,
    render_diff,
)
from repro.trace.analyze import parse_what_if


def _analyzed_sort(records=50_000, dram_budget=600_000, seed=7, **kw):
    tracer = Tracer(analyze=True)
    result = api.sort(api.RunOptions(
        records=records, seed=seed, dram_budget=dram_budget, trace=tracer,
        **kw,
    ))
    return result, tracer


def _canonical_sum(components):
    total = 0.0
    for cat in CATEGORIES:
        total = total + components[cat]
    return total


class TestDecomposition:
    def test_components_sum_exactly_to_span_time(self):
        # MergePass (tight DRAM budget): two phases plus the root span.
        _result, tracer = _analyzed_sort()
        report = analyze_tracer(tracer)
        assert len(report.phases) >= 3  # sort root + run-gen + merge
        for ph in report.phases:
            assert _canonical_sum(ph.components) == ph.duration
            for cat in CATEGORIES:
                assert ph.components[cat] >= 0.0 or cat == "cpu"

    def test_root_span_matches_total_time(self):
        result, tracer = _analyzed_sort()
        report = analyze_tracer(tracer)
        root = next(p for p in report.phases if p.name.startswith("sort:"))
        assert root.duration == pytest.approx(result.total_time, rel=1e-12)

    def test_device_busy_dominates_io_bound_sort(self):
        _result, tracer = _analyzed_sort()
        report = analyze_tracer(tracer)
        root = next(p for p in report.phases if p.name.startswith("sort:"))
        assert root.components["device_busy"] > 0.5 * root.duration

    def test_blame_names_read_and_write_directions(self):
        _result, tracer = _analyzed_sort()
        report = analyze_tracer(tracer)
        root = next(p for p in report.phases if p.name.startswith("sort:"))
        blames = {blame for _cat, blame, _secs in root.blame}
        assert "machine:read" in blames
        assert "machine:write" in blames

    def test_requires_analyze_armed_tracer(self):
        with pytest.raises(ConfigError, match="not armed"):
            analyze_tracer(Tracer())

    def test_observe_only_results_bit_identical(self):
        base = api.sort(api.RunOptions(records=20_000, seed=7,
                                       dram_budget=600_000))
        result, _tracer = _analyzed_sort(records=20_000)
        assert result.total_time == base.total_time
        assert result.internal_written == base.internal_written

    def test_two_same_seed_reports_byte_identical(self):
        _r1, t1 = _analyzed_sort()
        _r2, t2 = _analyzed_sort()
        a, b = analyze_tracer(t1), analyze_tracer(t2)
        assert a.to_json() == b.to_json()
        assert a.render() == b.render()

    def test_render_mentions_every_category(self):
        _result, tracer = _analyzed_sort(records=5_000, dram_budget=None)
        text = analyze_tracer(tracer).render()
        for cat in CATEGORIES:
            assert cat in text


class TestBlockedReasons:
    """Synthetic workloads driving each wait kind through the walk."""

    def test_dram_reason_becomes_dram_stall(self, pmem):
        from repro.device.profile import Pattern
        from repro.sim.engine import Join, Spawn

        machine = Machine(profile=pmem)
        tracer = Tracer(analyze=True).install(machine)
        sem = machine.semaphore(0, name="budget", reason="dram")

        def releaser():
            yield machine.io("write", Pattern.SEQ, 1 << 20, tag="w")
            sem.release()

        def waiter():
            rel = yield Spawn(releaser())
            with machine.trace_span("phase:stall"):
                yield sem.acquire()
            yield Join(rel)

        machine.run(waiter())
        report = analyze_tracer(tracer)
        ph = report.phase("phase:stall")
        assert ph.duration > 0
        assert ph.components["dram_stall"] == ph.duration
        assert _canonical_sum(ph.components) == ph.duration

    def test_plain_semaphore_reason_is_queueing(self, pmem):
        from repro.device.profile import Pattern
        from repro.sim.engine import Join, Spawn

        machine = Machine(profile=pmem)
        tracer = Tracer(analyze=True).install(machine)
        sem = machine.semaphore(0, name="slot", reason="write-slot")

        def releaser():
            yield machine.io("read", Pattern.SEQ, 1 << 20, tag="r")
            sem.release()

        def waiter():
            rel = yield Spawn(releaser())
            with machine.trace_span("phase:queued"):
                yield sem.acquire()
            yield Join(rel)

        machine.run(waiter())
        ph = analyze_tracer(tracer).phase("phase:queued")
        assert ph.duration > 0
        assert ph.components["queueing"] == ph.duration
        assert ("queueing", "write-slot") in {
            (cat, blame) for cat, blame, _ in ph.blame
        }

    def test_join_descends_into_last_finishing_child(self, pmem):
        from repro.device.profile import Pattern
        from repro.sim.engine import Join, Spawn

        machine = Machine(profile=pmem)
        tracer = Tracer(analyze=True).install(machine)

        def child(nbytes, direction, tag):
            yield machine.io(direction, Pattern.SEQ, nbytes, tag=tag)

        def parent():
            with machine.trace_span("phase:fanout"):
                fast = yield Spawn(child(1 << 16, "read", "r"))
                slow = yield Spawn(child(8 << 20, "write", "w"))
                yield Join([fast, slow])

        machine.run(parent())
        ph = analyze_tracer(tracer).phase("phase:fanout")
        # The slow writer is the binding constraint: its device time
        # dominates the join window.
        assert ph.components["device_busy"] > 0.0
        blames = {blame for _cat, blame, _ in ph.blame}
        assert any(b.endswith(":write") for b in blames)
        assert _canonical_sum(ph.components) == ph.duration

    def test_sleep_counts_as_queueing(self, pmem):
        from repro.sim.engine import Sleep

        machine = Machine(profile=pmem)
        tracer = Tracer(analyze=True).install(machine)

        def sleeper():
            with machine.trace_span("phase:nap"):
                yield Sleep(1e-3)

        machine.run(sleeper())
        ph = analyze_tracer(tracer).phase("phase:nap")
        assert ph.components["queueing"] == pytest.approx(1e-3)
        assert ("queueing", "sleep") in {
            (cat, blame) for cat, blame, _ in ph.blame
        }


class TestWhatIf:
    def test_parse_bw_grammar(self):
        wi = parse_what_if("braid.write_bw*2")
        assert (wi.kind, wi.metric, wi.factor, wi.scope) == \
            ("bw", "write_bw", 2.0, "braid")
        wi = parse_what_if("read_bw*1.5")
        assert wi.scope is None and wi.factor == 1.5
        assert parse_what_if("net_bw*4").metric == "net_bw"

    def test_parse_dram_grammar(self):
        assert parse_what_if("dram+4GiB").extra_bytes == 4 * 2**30
        assert parse_what_if("dram+512MiB").extra_bytes == 512 * 2**20
        assert parse_what_if("dram+2").extra_bytes == 2 * 2**30  # GiB default

    @pytest.mark.parametrize("expr", [
        "write_bw*0", "write_bw*-2", "bogus*2", "dram+0B", "dram-4GiB", "",
    ])
    def test_parse_rejects_garbage(self, expr):
        with pytest.raises(ConfigError):
            parse_what_if(expr)

    def test_write_bw_projection_matches_actual_rerun(self):
        """Acceptance: 2x write bandwidth on BRAID, projection within
        15% of the measured speedup of an actual re-run."""
        fmt = RecordFormat()

        def run(profile, tracer=None):
            machine = Machine(profile=profile)
            if tracer is not None:
                tracer.install(machine)
            data = generate_dataset(machine, "input", 50_000, fmt, seed=11)
            return WiscSort(fmt, config=SortConfig()).run(
                machine, data, validate=False
            )

        profile = bard_device_profile()
        tracer = Tracer(analyze=True)
        base = run(profile, tracer)
        report = analyze_tracer(tracer)
        projection = report.what_if("write_bw*2")
        projected = next(
            row for row in projection["phases"]
            if row["name"].startswith("sort:")
        )["speedup"]

        doubled = dataclasses.replace(
            profile,
            write=ScalingCurve(list(zip(
                profile.write._threads,
                [bw * 2 for bw in profile.write._bandwidth],
            ))),
        )
        faster = run(doubled)
        actual = base.total_time / faster.total_time
        assert actual > 1.2  # the workload is genuinely write-bound
        assert abs(projected - actual) / actual < 0.15

    def test_unaffected_hypothesis_projects_no_speedup(self):
        _result, tracer = _analyzed_sort(records=5_000, dram_budget=None)
        report = analyze_tracer(tracer)
        projection = report.what_if("net_bw*4")  # standalone: no net ops
        for row in projection["phases"]:
            assert row["speedup"] == 1.0
            assert row["projected"] == row["duration"]

    def test_render_what_if_is_deterministic(self):
        _result, tracer = _analyzed_sort(records=5_000, dram_budget=None)
        report = analyze_tracer(tracer)
        a = report.render_what_if(report.what_if("write_bw*2"))
        b = report.render_what_if(report.what_if("write_bw*2"))
        assert a == b and "speedup" in a


class TestDiff:
    def _report_doc(self):
        _result, tracer = _analyzed_sort(records=5_000, dram_budget=None)
        return analyze_tracer(tracer).as_dict()

    def test_self_diff_is_clean(self):
        doc = self._report_doc()
        diff = diff_reports(doc, json.loads(json.dumps(doc)))
        assert diff["regressions"] == []
        assert diff["improvements"] == []
        assert diff["missing"] == []

    def test_regression_detected_above_threshold(self):
        doc_a = self._report_doc()
        doc_b = json.loads(json.dumps(doc_a))
        doc_b["phases"][0]["duration"] *= 1.5
        diff = diff_reports(doc_a, doc_b, threshold=0.05)
        assert len(diff["regressions"]) == 1
        assert diff["regressions"][0]["name"] == doc_a["phases"][0]["name"]
        assert "REGRESSION" in render_diff(diff)

    def test_improvement_detected_below_threshold(self):
        doc_a = self._report_doc()
        doc_b = json.loads(json.dumps(doc_a))
        doc_b["phases"][0]["duration"] *= 0.5
        diff = diff_reports(doc_a, doc_b, threshold=0.05)
        assert diff["regressions"] == []
        assert len(diff["improvements"]) == 1

    def test_missing_schema_is_typed_error(self):
        doc = self._report_doc()
        naked = {k: v for k, v in doc.items() if k != "schema"}
        with pytest.raises(SchemaMismatchError, match="no 'schema'"):
            diff_reports(naked, doc)
        with pytest.raises(SchemaMismatchError):
            diff_reports(doc, naked)

    def test_schema_version_mismatch_rejected(self):
        doc_a = self._report_doc()
        doc_b = json.loads(json.dumps(doc_a))
        doc_b["schema"] = 99
        with pytest.raises(SchemaMismatchError, match="v1.*v99"):
            diff_reports(doc_a, doc_b)

    def test_kind_mismatch_rejected(self):
        doc = self._report_doc()
        selfperf = {"schema": 1, "workloads": {}}
        with pytest.raises(SchemaMismatchError, match="kinds differ"):
            diff_reports(doc, selfperf)

    def test_selfperf_documents_diff_on_total_time(self):
        a = {"schema": 1, "workloads": {"onepass": {
            "sim_seconds": 1.0,
            "fingerprint": {"total_time": (0.5).hex()},
        }}}
        b = json.loads(json.dumps(a))
        b["workloads"]["onepass"]["fingerprint"]["total_time"] = (0.6).hex()
        diff = diff_reports(a, b, threshold=0.05)
        assert len(diff["regressions"]) == 1

    def test_service_documents_diff_on_percentiles(self):
        a = {"schema": 1, "makespan": 1.0,
             "percentiles": {"latency": {"p99": 0.01}}}
        b = json.loads(json.dumps(a))
        b["percentiles"]["latency"]["p99"] = 0.05
        diff = diff_reports(a, b)
        assert [r["name"] for r in diff["regressions"]] == ["latency:p99"]


class TestCriticalPathUnits:
    """Direct unit coverage over synthetic tracer records."""

    def _tracer(self, procs, waits):
        tracer = Tracer(analyze=True)
        tracer.procs.extend(procs)
        tracer.waits.extend(waits)
        return tracer

    def test_interval_clipping(self):
        tracer = self._tracer(
            [{"pid": 1, "name": "p", "parent": None, "t0": 0.0, "t1": 10.0}],
            [{"pid": 1, "t0": 0.0, "t1": 10.0, "kind": "io",
              "reason": None, "resource": None,
              "op": {"kind": "io", "track": "m", "t1": 10.0,
                     "direction": "write"}}],
        )
        segs = CriticalPath(tracer).segments_for_interval(1, 2.0, 6.0)
        assert len(segs) == 1
        assert (segs[0].t0, segs[0].t1) == (2.0, 6.0)
        assert segs[0].category == "device_busy"
        assert segs[0].blame == "m:write"

    def test_join_tie_breaks_deterministically(self):
        procs = [
            {"pid": 1, "name": "p", "parent": None, "t0": 0.0, "t1": 5.0},
            {"pid": 2, "name": "a", "parent": 1, "t0": 0.0, "t1": 5.0},
            {"pid": 3, "name": "b", "parent": 1, "t0": 0.0, "t1": 5.0},
        ]
        waits = [
            {"pid": 1, "t0": 0.0, "t1": 5.0, "kind": "join",
             "reason": None, "resource": None, "targets": [2, 3]},
            {"pid": 2, "t0": 0.0, "t1": 5.0, "kind": "sleep",
             "reason": None, "resource": None},
            {"pid": 3, "t0": 0.0, "t1": 5.0, "kind": "primitive",
             "reason": "dram", "resource": None},
        ]
        segs = CriticalPath(self._tracer(procs, waits)) \
            .segments_for_interval(1, 0.0, 5.0)
        # Both children finish at t=5; the tie breaks to the first
        # target (pid 2, the sleeper) -- deterministically.
        assert [s.category for s in segs] == ["queueing"]
        assert segs[0].blame == "sleep"

    def test_net_op_classified_as_net(self):
        tracer = self._tracer(
            [{"pid": 1, "name": "p", "parent": None, "t0": 0.0, "t1": 1.0}],
            [{"pid": 1, "t0": 0.0, "t1": 1.0, "kind": "io",
              "reason": None, "resource": None,
              "op": {"kind": "net", "track": "net", "t1": 1.0,
                     "direction": None}}],
        )
        segs = CriticalPath(tracer).segments_for_interval(1, 0.0, 1.0)
        assert segs[0].category == "net"

    def test_parallel_attributes_to_last_finishing_member(self):
        tracer = self._tracer(
            [{"pid": 1, "name": "p", "parent": None, "t0": 0.0, "t1": 4.0}],
            [{"pid": 1, "t0": 0.0, "t1": 4.0, "kind": "parallel",
              "reason": None, "resource": None,
              "members": [
                  {"kind": "io", "track": "a", "t1": 2.0,
                   "direction": "read"},
                  {"kind": "io", "track": "b", "t1": 4.0,
                   "direction": "write"},
              ]}],
        )
        segs = CriticalPath(tracer).segments_for_interval(1, 0.0, 4.0)
        assert segs[0].blame == "b:write"
