"""Unit tests for the device profile cost model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.curves import ScalingCurve
from repro.device.profile import DEFAULT_GATHER_TABLE, DeviceProfile, Pattern
from repro.errors import ConfigError


def make_profile(byte_addressable=True, granularity=256, gather_table=None):
    flat = ScalingCurve.flat(1e9)
    return DeviceProfile(
        name="test",
        byte_addressable=byte_addressable,
        granularity=granularity,
        seq_read=flat,
        rand_read=flat,
        write=flat,
        gather_table=gather_table,
    )


class TestSequentialWork:
    def test_seq_rounds_to_granule(self):
        p = make_profile()
        assert p.io_work(Pattern.SEQ, 1000) == 1024.0
        assert p.io_work(Pattern.SEQ, 256) == 256.0

    def test_zero_bytes_zero_work(self):
        p = make_profile()
        assert p.io_work(Pattern.SEQ, 0) == 0.0
        assert p.io_work(Pattern.RAND, 0) == 0.0

    def test_negative_bytes_rejected(self):
        p = make_profile()
        with pytest.raises(ValueError):
            p.io_work(Pattern.SEQ, -1)


class TestRandomWork:
    def test_byte_addressable_pays_fixed_overhead(self):
        p = make_profile()
        # one 256B access: 256 + 0.22*256
        expected = 256 + 0.22 * 256
        assert p.io_work(Pattern.RAND, 256, accesses=1) == pytest.approx(expected)

    def test_block_device_pays_full_blocks(self):
        p = make_profile(byte_addressable=False, granularity=4096)
        # The paper's GraySort example: 100B random read amplifies 40x.
        work = p.io_work(Pattern.RAND, 100, accesses=1)
        assert work == 4096.0
        assert work / 100 > 40

    def test_many_small_accesses_scale_linearly(self):
        p = make_profile()
        one = p.io_work(Pattern.RAND, 100, accesses=1)
        hundred = p.io_work(Pattern.RAND, 100 * 100, accesses=100)
        assert hundred == pytest.approx(100 * one)

    def test_random_batch_work_matches_scalar_path(self):
        p = make_profile()
        sizes = np.array([100, 200, 300])
        total = p.random_batch_work(sizes)
        scalar = sum(p.io_work(Pattern.RAND, s, accesses=1) for s in sizes)
        assert total == pytest.approx(scalar)

    def test_random_batch_work_block_device(self):
        p = make_profile(byte_addressable=False, granularity=4096)
        assert p.random_batch_work(np.array([100, 5000])) == 4096 + 8192

    def test_empty_batch(self):
        p = make_profile()
        assert p.random_batch_work(np.array([], dtype=np.int64)) == 0.0


class TestStridedWork:
    def test_gather_table_interpolates(self):
        p = make_profile(gather_table=DEFAULT_GATHER_TABLE)
        at_100 = p.io_work(Pattern.STRIDED, 10, accesses=1, stride=100)
        at_64 = p.io_work(Pattern.STRIDED, 10, accesses=1, stride=64)
        at_128 = p.io_work(Pattern.STRIDED, 10, accesses=1, stride=128)
        assert at_64 < at_100 < at_128

    def test_gather_table_clamps_at_extremes(self):
        p = make_profile(gather_table=((64, 44.0), (512, 171.0)))
        assert p.io_work(Pattern.STRIDED, 10, accesses=1, stride=8192) == 171.0
        # Below the first entry: scales down proportionally.
        assert p.io_work(Pattern.STRIDED, 10, accesses=1, stride=32) == pytest.approx(22.0)

    def test_gather_larger_access_adds_bytes(self):
        p = make_profile(gather_table=DEFAULT_GATHER_TABLE)
        small = p.io_work(Pattern.STRIDED, 10, accesses=1, stride=100)
        large = p.io_work(Pattern.STRIDED, 24, accesses=1, stride=100)
        assert large == pytest.approx(small + 14)

    def test_no_table_dense_stride_costs_stride(self):
        p = make_profile(granularity=256, gather_table=None)
        # stride < granule: every granule touched once -> cost = stride.
        assert p.io_work(Pattern.STRIDED, 10, accesses=1, stride=100) == 100.0

    def test_no_table_sparse_stride_costs_random(self):
        p = make_profile(granularity=64, gather_table=None)
        strided = p.io_work(Pattern.STRIDED, 10, accesses=1, stride=512)
        rand = p.io_work(Pattern.RAND, 10, accesses=1)
        assert strided == pytest.approx(rand)

    def test_gather_scales_with_access_count(self):
        p = make_profile(gather_table=DEFAULT_GATHER_TABLE)
        one = p.io_work(Pattern.STRIDED, 10, accesses=1, stride=100)
        many = p.io_work(Pattern.STRIDED, 10 * 1000, accesses=1000, stride=100)
        assert many == pytest.approx(1000 * one)

    @settings(max_examples=40, deadline=None)
    @given(stride=st.integers(min_value=16, max_value=8192))
    def test_gather_cost_monotone_in_stride(self, stride):
        p = make_profile(gather_table=DEFAULT_GATHER_TABLE)
        a = p.io_work(Pattern.STRIDED, 10, accesses=1, stride=stride)
        b = p.io_work(Pattern.STRIDED, 10, accesses=1, stride=stride * 2)
        assert b >= a


class TestValidation:
    def test_bad_granularity_rejected(self):
        with pytest.raises(ConfigError):
            make_profile(granularity=0)

    def test_empty_gather_table_rejected(self):
        with pytest.raises(ConfigError):
            make_profile(gather_table=())

    def test_describe_mentions_name(self):
        assert "test" in make_profile().describe()
