"""Tests pinning the calibrated device profiles to the paper's numbers."""

from __future__ import annotations

import pytest

from repro.device.profile import Pattern
from repro.device.profiles import PROFILE_FACTORIES
from repro.units import GB


class TestPmemCalibration:
    def test_seq_read_peak_matches_fig5_ideal_time(self, pmem):
        # "the ideal time to read 20 GB on our setup is 0.90s"
        ideal = 20 * GB / pmem.seq_read.peak
        assert ideal == pytest.approx(0.90, abs=0.01)

    def test_random_256b_is_18pct_slower_than_seq(self, pmem):
        # Sec 2.3 (R): effective 256B random user bandwidth vs sequential.
        work = pmem.io_work(Pattern.RAND, 256, accesses=1)
        user_bw = pmem.rand_read.peak * 256 / work
        assert user_bw / pmem.seq_read.peak == pytest.approx(0.82, abs=0.01)

    def test_write_peak_at_few_threads(self, pmem):
        # Sec 3.8: "5 threads for writing ... writes do not scale".
        assert 3 <= pmem.write.peak_threads <= 6

    def test_write_degrades_at_max_threads(self, pmem):
        # Sec 2.3 (D): max-thread writes ~2x slower than peak.
        ratio = pmem.write.peak / pmem.write.aggregate(32)
        assert 1.5 <= ratio <= 2.5

    def test_read_write_asymmetry(self, pmem):
        # Sec 2.3 (A): reads up to 4x faster than writes.
        assert 2.0 <= pmem.seq_read.peak / pmem.write.peak <= 4.5

    def test_reads_scale_to_physical_cores(self, pmem):
        # Sec 3.8: read bandwidth scales up to 16 threads.
        assert pmem.seq_read.aggregate(16) > pmem.seq_read.aggregate(8)
        assert pmem.seq_read.aggregate(32) == pytest.approx(
            pmem.seq_read.aggregate(16)
        )

    def test_interference_present(self, pmem):
        assert pmem.interference.read_multiplier(5) < 0.8

    def test_granularity_is_xpline(self, pmem):
        assert pmem.granularity == 256


class TestDramProfile:
    def test_symmetricish_and_fast(self, dram):
        assert dram.seq_read.peak > 2 * 22.2 * GB / 22.2  # sanity: positive
        assert dram.seq_read.peak / dram.write.peak < 2.0

    def test_no_interference(self, dram):
        assert dram.interference.read_multiplier(10) == 1.0

    def test_inplace_penalty_10x_below_pmem(self, pmem, dram):
        assert pmem.inplace_penalty_ns / dram.inplace_penalty_ns == pytest.approx(
            10.0
        )


class TestEmulatedDevices:
    def test_bd_random_much_slower_than_seq(self, emulated_profiles):
        bd = emulated_profiles["bd"]
        assert bd.seq_read.peak / bd.rand_read.peak > 5
        # symmetric read/write (no A property)
        assert bd.seq_read.peak == pytest.approx(bd.write.peak)

    def test_brd_fully_symmetric(self, emulated_profiles):
        brd = emulated_profiles["brd"]
        assert brd.rand_read.peak == pytest.approx(brd.seq_read.peak)
        assert brd.write.peak == pytest.approx(brd.seq_read.peak)

    def test_bard_writes_much_slower(self, emulated_profiles):
        bard = emulated_profiles["bard"]
        assert bard.seq_read.peak / bard.write.peak > 3
        assert bard.rand_read.peak == pytest.approx(bard.seq_read.peak)

    def test_no_interference_on_emulated_devices(self, emulated_profiles):
        for profile in emulated_profiles.values():
            assert profile.interference.read_multiplier(8) == 1.0

    def test_cache_line_granularity(self, emulated_profiles):
        for profile in emulated_profiles.values():
            assert profile.granularity == 64


class TestBlockSsd:
    def test_block_device_flags(self):
        ssd = PROFILE_FACTORIES["block-ssd"]()
        assert not ssd.byte_addressable
        assert ssd.granularity == 4096
        assert ssd.gather_table is None


class TestRegistry:
    def test_all_factories_build(self):
        for name, factory in PROFILE_FACTORIES.items():
            profile = factory()
            assert profile.name == name
            assert profile.seq_read.peak > 0
            assert profile.capacity > 0
