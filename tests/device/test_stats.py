"""Tests for the device statistics recorder."""

from __future__ import annotations

import pytest

from repro.device.profile import Pattern
from repro.machine import Machine


class TestTagAccounting:
    def test_busy_time_and_bytes_recorded(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 20, tag="phase-a", threads=16)
            yield machine.io("write", Pattern.SEQ, 1 << 20, tag="phase-b", threads=5)

        machine.run(job())
        tags = machine.stats.tags
        assert tags["phase-a"].busy_time > 0
        assert tags["phase-b"].busy_time > 0
        assert tags["phase-a"].internal_bytes == pytest.approx(1 << 20)
        assert machine.stats.bytes_read_internal == pytest.approx(1 << 20)
        assert machine.stats.bytes_written_internal == pytest.approx(1 << 20)

    def test_tag_table_ordered_by_first_activity(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 4096, tag="first", threads=1)
            yield machine.io("read", Pattern.SEQ, 4096, tag="second", threads=1)

        machine.run(job())
        names = [tag for tag, _ in machine.stats.tag_table()]
        assert names == ["first", "second"]

    def test_direction_and_pattern_captured(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.RAND, 4096, tag="gather", threads=1)

        machine.run(job())
        assert machine.stats.tags["gather"].direction == "read"
        assert machine.stats.tags["gather"].pattern == "rand"

    def test_untagged_ops_not_credited(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 4096, tag="", threads=1)

        machine.run(job())
        assert "" not in machine.stats.tags


class TestTimeline:
    def test_timeline_covers_run(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 22, tag="r", threads=16)

        machine.run(job())
        timeline = machine.stats.timeline
        assert timeline
        assert timeline[0][0] == 0.0
        assert timeline[-1][1] == pytest.approx(machine.now)

    def test_peak_bandwidths(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 22, tag="r", threads=16)

        machine.run(job())
        assert machine.stats.peak_read_bw() == pytest.approx(pmem.seq_read.peak)
        assert machine.stats.peak_write_bw() == 0.0

    def test_coarse_timeline_buckets(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 22, tag="r", threads=16)
            yield machine.io("write", Pattern.SEQ, 1 << 22, tag="w", threads=5)

        machine.run(job())
        rows = machine.stats.coarse_timeline(buckets=10)
        assert len(rows) == 10
        # Early buckets are read-dominated, late buckets write-dominated.
        assert rows[0][1] > rows[0][2]
        assert rows[-1][2] > rows[-1][1]

    def test_mean_cores_positive_with_compute(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.compute(0.001, tag="c", cores=4)

        machine.run(job())
        assert machine.stats.mean_cores() == pytest.approx(4.0)

    def test_empty_stats(self, pmem):
        machine = Machine(profile=pmem)
        assert machine.stats.coarse_timeline() == []
        assert machine.stats.mean_cores() == 0.0
