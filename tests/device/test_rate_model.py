"""Tests for the BRAID rate model (device caps + host water-filling)."""

from __future__ import annotations

import pytest

from repro.device.curves import InterferenceModel, ScalingCurve
from repro.device.device import BraidRateModel, make_io_op, _waterfill
from repro.device.profile import DeviceProfile, Pattern
from repro.sim.fluid import FluidOp
from repro.units import GB


@pytest.fixture
def profile():
    return DeviceProfile(
        name="synthetic",
        byte_addressable=True,
        granularity=256,
        seq_read=ScalingCurve.linear_to_saturation(peak=16 * GB, saturation_threads=16),
        rand_read=ScalingCurve.linear_to_saturation(peak=8 * GB, saturation_threads=16),
        write=ScalingCurve.peaked(peak=4 * GB, peak_threads=4, tail=2 * GB, tail_threads=32),
        interference=InterferenceModel(
            read_floor=0.5, read_slope=1.0, write_floor=0.8, write_slope=0.1
        ),
    )


@pytest.fixture
def model(profile, host):
    return BraidRateModel(profile, host)


def read_op(profile, threads=1, pattern=Pattern.SEQ, nbytes=1 << 20):
    return make_io_op(profile, "read", pattern, nbytes, "t", threads=threads)


def write_op(profile, threads=1, nbytes=1 << 20):
    return make_io_op(profile, "write", Pattern.SEQ, nbytes, "t", threads=threads)


class TestDeviceCaps:
    def test_single_pooled_reader_gets_curve_value(self, model, profile):
        op = read_op(profile, threads=16)
        rates = model.assign([op])
        assert rates[op] == pytest.approx(16 * GB)

    def test_two_pools_share_by_thread_weight(self, model, profile):
        a = read_op(profile, threads=12)
        b = read_op(profile, threads=4)
        rates = model.assign([a, b])
        assert rates[a] / rates[b] == pytest.approx(3.0)
        assert rates[a] + rates[b] == pytest.approx(16 * GB)

    def test_oversubscribed_readers_split_saturated_curve(self, model, profile):
        ops = [read_op(profile, threads=16) for _ in range(2)]
        rates = model.assign(ops)
        assert sum(rates.values()) == pytest.approx(16 * GB)

    def test_random_reads_use_random_curve(self, model, profile):
        op = read_op(profile, threads=16, pattern=Pattern.RAND)
        rates = model.assign([op])
        # work includes overhead, so the *rate* equals the rand curve.
        assert rates[op] == pytest.approx(8 * GB)

    def test_write_curve_declines_when_oversubscribed(self, model, profile):
        at_peak = model.assign([write_op(profile, threads=4)])
        at_tail = model.assign([write_op(profile, threads=32)])
        assert list(at_peak.values())[0] == pytest.approx(4 * GB)
        assert list(at_tail.values())[0] == pytest.approx(2 * GB)

    def test_reads_degrade_under_concurrent_writes(self, model, profile):
        r = read_op(profile, threads=16)
        w = write_op(profile, threads=4)
        rates = model.assign([r, w])
        alone = model.assign([read_op(profile, threads=16)])
        assert rates[r] < list(alone.values())[0]
        # floor is 0.5 with slope 1: 4 writers -> 1/(1+4)=0.2 -> floor 0.5
        assert rates[r] == pytest.approx(16 * GB * 0.5)

    def test_writes_mildly_degrade_under_reads(self, model, profile):
        w = write_op(profile, threads=4)
        r = read_op(profile, threads=16)
        rates = model.assign([r, w])
        assert rates[w] >= 0.8 * 4 * GB - 1


class TestHostCoupling:
    def test_cpu_compute_ops_share_cores(self, model):
        ops = [
            FluidOp(1.0, kind="cpu", mode="compute", cores=16),
            FluidOp(1.0, kind="cpu", mode="compute", cores=16),
        ]
        rates = model.assign(ops)
        # two 16-core ops on 16 cores: max-min gives 8 cores each
        assert sum(rates.values()) == pytest.approx(16.0)

    def test_single_core_op_rate_capped_at_one(self, model):
        op = FluidOp(1.0, kind="cpu", mode="compute", cores=1)
        rates = model.assign([op])
        assert rates[op] == pytest.approx(1.0)

    def test_copy_op_capped_by_per_core_bandwidth(self, model, host):
        op = FluidOp(1e9, kind="cpu", mode="copy", cores=1)
        rates = model.assign([op])
        assert rates[op] == pytest.approx(host.copy_bw_per_core)

    def test_many_copies_capped_by_bus(self, model, host):
        ops = [FluidOp(1e9, kind="cpu", mode="copy", cores=4) for _ in range(4)]
        rates = model.assign(ops)
        assert sum(rates.values()) <= host.bus_bw * (1 + 1e-9)

    def test_unknown_cpu_mode_rejected(self, model):
        op = FluidOp(1.0, kind="cpu", mode="warp", cores=1)
        with pytest.raises(ValueError):
            model.assign([op])


class TestWaterfill:
    def test_unconstrained_ops_reach_cap(self):
        op = FluidOp(1.0, kind="cpu")
        rates = _waterfill([(op, 5.0, {"cpu": 0.0})], {"cpu": 1.0})
        assert rates[op] == pytest.approx(5.0)

    def test_resource_saturation_freezes_users(self):
        heavy = FluidOp(1.0, kind="cpu")
        light = FluidOp(1.0, kind="cpu")
        entries = [
            (heavy, 10.0, {"cpu": 1.0}),
            (light, 10.0, {"cpu": 0.0}),
        ]
        rates = _waterfill(entries, {"cpu": 5.0})
        assert rates[heavy] == pytest.approx(5.0)
        assert rates[light] == pytest.approx(10.0)

    def test_zero_cap_op_gets_zero(self):
        op = FluidOp(1.0, kind="cpu")
        rates = _waterfill([(op, 0.0, {})], {"cpu": 1.0})
        assert rates[op] == 0.0

    def test_equal_sharing_of_saturated_resource(self):
        a = FluidOp(1.0, kind="cpu")
        b = FluidOp(1.0, kind="cpu")
        entries = [(a, 10.0, {"bus": 1.0}), (b, 10.0, {"bus": 1.0})]
        rates = _waterfill(entries, {"bus": 10.0, "cpu": 100.0})
        assert rates[a] == pytest.approx(5.0)
        assert rates[b] == pytest.approx(5.0)


class TestMakeIoOp:
    def test_host_ratio_reflects_payload_vs_work(self, profile):
        op = make_io_op(
            profile, "read", Pattern.STRIDED, 10, "t", accesses=1, stride=100
        )
        assert 0 < op.attrs["host_ratio"] < 1

    def test_invalid_direction_rejected(self, profile):
        with pytest.raises(ValueError):
            make_io_op(profile, "sideways", Pattern.SEQ, 10, "t")

    def test_invalid_threads_rejected(self, profile):
        with pytest.raises(ValueError):
            make_io_op(profile, "read", Pattern.SEQ, 10, "t", threads=0)
