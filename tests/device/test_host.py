"""Tests for the host cost model."""

from __future__ import annotations

import pytest

from repro.device.host import HostModel
from repro.errors import ConfigError


class TestCosts:
    def test_sort_seconds_nlogn(self, host):
        small = host.sort_seconds(1_000)
        large = host.sort_seconds(1_000_000)
        # 1000x items, log grows 10/20 -> ~2000x work.
        assert 1500 <= large / small <= 2500

    def test_sort_trivial_sizes_free(self, host):
        assert host.sort_seconds(0) == 0.0
        assert host.sort_seconds(1) == 0.0

    def test_merge_compare_scales_with_log_ways(self, host):
        two = host.merge_compare_seconds(1000, ways=2)
        sixteen = host.merge_compare_seconds(1000, ways=16)
        assert sixteen > two
        # log2(16)/log2(2) = 4x comparisons, plus constant touch cost.
        assert sixteen / two < 4.0

    def test_merge_compare_empty(self, host):
        assert host.merge_compare_seconds(0, ways=4) == 0.0

    def test_touch_seconds_linear(self, host):
        assert host.touch_seconds(2_000) == pytest.approx(
            2 * host.touch_seconds(1_000)
        )

    def test_copy_seconds(self, host):
        one_gb = int(host.copy_bw_per_core)
        assert host.copy_seconds_single_core(one_gb) == pytest.approx(1.0)


class TestValidation:
    def test_defaults_match_paper_testbed(self, host):
        assert host.ncores == 16  # Xeon Gold 5218, 16 physical cores

    def test_invalid_cores_rejected(self):
        with pytest.raises(ConfigError):
            HostModel(ncores=0)

    def test_invalid_bandwidths_rejected(self):
        with pytest.raises(ConfigError):
            HostModel(copy_bw_per_core=0)
        with pytest.raises(ConfigError):
            HostModel(bus_bw=-1)
