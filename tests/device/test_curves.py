"""Unit tests for scaling curves and the interference model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.curves import InterferenceModel, ScalingCurve
from repro.units import GB


class TestScalingCurve:
    def test_exact_points_returned(self):
        curve = ScalingCurve([(1, 2.0), (4, 8.0), (16, 10.0)])
        assert curve.aggregate(1) == 2.0
        assert curve.aggregate(4) == 8.0
        assert curve.aggregate(16) == 10.0

    def test_interpolation_between_points(self):
        curve = ScalingCurve([(1, 2.0), (5, 10.0)])
        assert curve.aggregate(3) == pytest.approx(6.0)

    def test_beyond_last_point_holds(self):
        curve = ScalingCurve([(1, 2.0), (8, 16.0)])
        assert curve.aggregate(100) == 16.0

    def test_below_one_thread_scales_down(self):
        curve = ScalingCurve([(2, 4.0)])
        # 1 thread gets half the 2-thread aggregate.
        assert curve.aggregate(1) == pytest.approx(2.0)

    def test_per_thread_is_fair_share(self):
        curve = ScalingCurve([(1, 3.0), (4, 12.0), (16, 12.0)])
        assert curve.per_thread(4) == pytest.approx(3.0)
        assert curve.per_thread(16) == pytest.approx(0.75)

    def test_peak_and_peak_threads(self):
        curve = ScalingCurve.peaked(
            peak=8 * GB, peak_threads=5, tail=4 * GB, tail_threads=32
        )
        assert curve.peak == 8 * GB
        assert curve.peak_threads == 5

    def test_peaked_curve_declines_past_peak(self):
        curve = ScalingCurve.peaked(
            peak=8 * GB, peak_threads=5, tail=4 * GB, tail_threads=32
        )
        assert curve.aggregate(32) < curve.aggregate(5)
        assert curve.aggregate(32) == pytest.approx(4 * GB)

    def test_linear_to_saturation_shape(self):
        curve = ScalingCurve.linear_to_saturation(peak=16.0, saturation_threads=8)
        assert curve.aggregate(8) == pytest.approx(16.0)
        assert curve.aggregate(4) == pytest.approx(8.0)
        assert curve.aggregate(64) == pytest.approx(16.0)

    def test_flat_curve(self):
        curve = ScalingCurve.flat(5.0)
        for t in (1, 7, 100):
            assert curve.aggregate(t) == 5.0

    def test_scaled_multiplies_bandwidth(self):
        curve = ScalingCurve([(1, 2.0), (4, 8.0)])
        doubled = curve.scaled(2.0)
        assert doubled.aggregate(4) == pytest.approx(16.0)

    def test_invalid_curves_rejected(self):
        with pytest.raises(ValueError):
            ScalingCurve([])
        with pytest.raises(ValueError):
            ScalingCurve([(0.5, 1.0)])
        with pytest.raises(ValueError):
            ScalingCurve([(1, 0.0)])
        with pytest.raises(ValueError):
            ScalingCurve.peaked(peak=8, peak_threads=5, tail=4, tail_threads=5)

    @settings(max_examples=50, deadline=None)
    @given(threads=st.floats(min_value=1, max_value=200))
    def test_aggregate_always_positive(self, threads):
        curve = ScalingCurve([(1, 1.0), (4, 8.0), (16, 4.0)])
        assert curve.aggregate(threads) > 0


class TestInterferenceModel:
    def test_no_writers_no_penalty(self):
        model = InterferenceModel()
        assert model.read_multiplier(0) == 1.0
        assert model.write_multiplier(0) == 1.0

    def test_read_penalty_monotone_in_writers(self):
        model = InterferenceModel()
        values = [model.read_multiplier(w) for w in range(0, 20)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_read_penalty_respects_floor(self):
        model = InterferenceModel(read_floor=0.4, read_slope=10.0)
        assert model.read_multiplier(100) == pytest.approx(0.4)

    def test_write_penalty_respects_floor(self):
        model = InterferenceModel(write_floor=0.6, write_slope=10.0)
        assert model.write_multiplier(100) == pytest.approx(0.6)

    def test_none_model_has_no_effect(self):
        model = InterferenceModel.none()
        assert model.read_multiplier(50) == 1.0
        assert model.write_multiplier(50) == 1.0

    def test_invalid_floors_rejected(self):
        with pytest.raises(ValueError):
            InterferenceModel(read_floor=0.0)
        with pytest.raises(ValueError):
            InterferenceModel(write_floor=1.5)
