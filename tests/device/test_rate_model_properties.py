"""Property tests on the BRAID rate model: conservation and sanity.

Whatever the active op population, the model must (a) never assign
negative rates, (b) never exceed device/host capacities, and (c) keep
every op progressing (no starvation) -- otherwise the event loop could
deadlock or violate work conservation.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.device.device import BraidRateModel, make_io_op
from repro.device.host import HostModel
from repro.device.profiles import pmem_profile
from repro.device.profile import Pattern
from repro.sim.fluid import FluidOp

_PROFILE = pmem_profile()
_HOST = HostModel()
_MODEL = BraidRateModel(_PROFILE, _HOST)


@st.composite
def op_population(draw):
    ops = []
    n = draw(st.integers(1, 12))
    for _ in range(n):
        kind = draw(st.sampled_from(["read", "write", "compute", "copy"]))
        if kind in ("read", "write"):
            pattern = draw(st.sampled_from([Pattern.SEQ, Pattern.RAND]))
            threads = draw(st.integers(1, 32))
            nbytes = draw(st.integers(1, 1 << 24))
            ops.append(
                make_io_op(
                    _PROFILE,
                    kind,
                    pattern if kind == "read" else Pattern.SEQ,
                    nbytes,
                    "t",
                    accesses=draw(st.integers(1, 64)) if pattern is Pattern.RAND else 1,
                    threads=threads,
                )
            )
        elif kind == "compute":
            ops.append(
                FluidOp(1.0, kind="cpu", mode="compute",
                        cores=draw(st.integers(1, 16)))
            )
        else:
            ops.append(
                FluidOp(1e6, kind="cpu", mode="copy",
                        cores=draw(st.integers(1, 16)))
            )
    return ops


class TestRateModelProperties:
    @settings(max_examples=80, deadline=None)
    @given(ops=op_population())
    def test_no_negative_rates_and_no_starvation(self, ops):
        rates = _MODEL.assign(ops)
        for op in ops:
            assert rates[op] >= 0
            # Every op with positive cap makes progress.
            assert rates[op] > 0

    @settings(max_examples=80, deadline=None)
    @given(ops=op_population())
    def test_device_read_capacity_respected(self, ops):
        rates = _MODEL.assign(ops)
        reads = [op for op in ops if op.kind == "io" and op.attrs["direction"] == "read"]
        total = sum(rates[op] for op in reads)
        # Total read rate can never exceed the best read curve peak.
        best = max(_PROFILE.seq_read.peak, _PROFILE.rand_read.peak)
        assert total <= best * (1 + 1e-9)

    @settings(max_examples=80, deadline=None)
    @given(ops=op_population())
    def test_write_capacity_respected(self, ops):
        rates = _MODEL.assign(ops)
        writes = [op for op in ops if op.kind == "io" and op.attrs["direction"] == "write"]
        total = sum(rates[op] for op in writes)
        assert total <= _PROFILE.write.peak * (1 + 1e-9)

    @settings(max_examples=80, deadline=None)
    @given(ops=op_population())
    def test_cpu_capacity_respected(self, ops):
        rates = _MODEL.assign(ops)
        cores_used = 0.0
        for op in ops:
            if op.kind == "cpu":
                mode = op.attrs.get("mode", "compute")
                if mode == "compute":
                    cores_used += rates[op]
                else:
                    cores_used += rates[op] / _HOST.copy_bw_per_core
            else:
                cores_used += rates[op] / _HOST.io_cpu_bw
        assert cores_used <= _HOST.ncores * (1 + 1e-6)

    @settings(max_examples=80, deadline=None)
    @given(ops=op_population())
    def test_bus_capacity_respected(self, ops):
        rates = _MODEL.assign(ops)
        bus_used = 0.0
        for op in ops:
            if op.kind == "io":
                bus_used += rates[op] * op.attrs["host_ratio"]
            elif op.attrs.get("mode") == "copy":
                bus_used += rates[op]
        assert bus_used <= _HOST.bus_bw * (1 + 1e-6)

    @settings(max_examples=40, deadline=None)
    @given(ops=op_population())
    def test_adding_writers_never_speeds_up_readers(self, ops):
        reads = [op for op in ops if op.kind == "io" and op.attrs["direction"] == "read"]
        if not reads:
            return
        base = _MODEL.assign(reads)
        writer = make_io_op(_PROFILE, "write", Pattern.SEQ, 1 << 20, "w", threads=4)
        with_writer = _MODEL.assign(reads + [writer])
        for op in reads:
            assert with_writer[op] <= base[op] * (1 + 1e-9)
