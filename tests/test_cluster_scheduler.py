"""Tests for the cluster job scheduler: policies, DRAM admission, metrics."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, JobScheduler
from repro.errors import ConfigError, DramBudgetError

MIB = 1024 * 1024


def _scheduler(pmem, shards=2, policy="fifo", dram_budget=None):
    cluster = Cluster(shards=shards, profile=pmem, dram_budget=dram_budget)
    return cluster, JobScheduler(cluster, policy=policy)


class TestSubmission:
    def test_unknown_policy_rejected(self, pmem):
        cluster = Cluster(shards=1, profile=pmem)
        with pytest.raises(ConfigError):
            JobScheduler(cluster, policy="lifo")

    def test_round_robin_placement(self, pmem):
        cluster, sched = _scheduler(pmem, shards=3)
        jobs = [sched.submit(f"j{i}", n_records=100) for i in range(6)]
        assert [j.shard.domain for j in jobs] == [
            "shard0", "shard1", "shard2", "shard0", "shard1", "shard2",
        ]

    def test_never_admittable_job_rejected_at_submit(self, pmem):
        cluster, sched = _scheduler(pmem, dram_budget=2 * MIB)
        # default reservation for 100k records is far beyond 2 MiB
        with pytest.raises(DramBudgetError):
            sched.submit("whale", n_records=100_000)

    def test_explicit_reservation_overrides_default(self, pmem):
        cluster, sched = _scheduler(pmem, dram_budget=2 * MIB)
        job = sched.submit("minnow", n_records=1_000, dram_bytes=MIB)
        assert job.dram_bytes == MIB


class TestExecution:
    def test_all_jobs_finish_and_validate(self, pmem):
        cluster, sched = _scheduler(pmem, shards=2)
        for i in range(4):
            sched.submit(f"j{i}", n_records=1_000, seed=i)
        jobs = sched.run()  # validates each output
        assert len(jobs) == 4
        for job in jobs:
            assert job.finish_time is not None
            assert job.service_time > 0
            assert job.slowdown >= 1.0

    def test_concurrent_jobs_never_collide_on_filenames(self, pmem):
        # two jobs on the same shard: intermediates are prefixed with the
        # per-job output name, so both validate
        cluster, sched = _scheduler(pmem, shards=1)
        sched.submit("a", n_records=800, seed=1)
        sched.submit("b", n_records=800, seed=2)
        jobs = sched.run()
        assert {j.output_file.name for j in jobs} == {"a.out", "b.out"}

    def test_dram_budget_queues_jobs(self, pmem):
        # budget fits one default reservation (~16 MiB for 5k records)
        # at a time, so the second job queues behind the first
        cluster, sched = _scheduler(pmem, shards=2, dram_budget=32 * MIB)
        for i in range(3):
            sched.submit(f"j{i}", n_records=5_000, seed=i)
        jobs = sched.run()
        queued = [j for j in jobs if j.queue_time > 0]
        assert queued, "a tight DRAM pool must delay at least one job"
        assert max(j.slowdown for j in jobs) > 1.0
        assert cluster.dram.peak <= 32 * MIB

    def test_fifo_preserves_submission_order(self, pmem):
        cluster, sched = _scheduler(pmem, shards=1, policy="fifo",
                                    dram_budget=32 * MIB)
        for i in range(3):
            sched.submit(f"j{i}", n_records=5_000, seed=i)
        jobs = sched.run()
        starts = [j.start_time for j in jobs]
        assert starts == sorted(starts)

    def test_fair_share_rotates_tenants(self, pmem):
        # one tenant bursts 4 jobs, the other submits 2 afterwards; with
        # a pool that serves two jobs at a time, fair-share lets the
        # second tenant in before the burst drains
        cluster, sched = _scheduler(pmem, shards=2, policy="fair",
                                    dram_budget=32 * MIB)
        for i in range(4):
            sched.submit(f"burst{i}", n_records=5_000, seed=i, tenant="alice")
        for i in range(2):
            sched.submit(f"tail{i}", n_records=5_000, seed=10 + i,
                         tenant="bob")
        jobs = sched.run()
        by_name = {j.name: j for j in jobs}
        # bob's first job must start before alice's burst has fully started
        assert by_name["tail0"].start_time < by_name["burst3"].start_time

    def test_policies_are_deterministic(self, pmem):
        def run(policy):
            cluster, sched = _scheduler(pmem, shards=2, policy=policy,
                                        dram_budget=32 * MIB)
            for i in range(4):
                sched.submit(f"j{i}", n_records=2_000, seed=i,
                             tenant=f"t{i % 2}")
            return [
                (j.name, j.start_time, j.finish_time) for j in sched.run()
            ]

        for policy in ("fifo", "fair"):
            assert run(policy) == run(policy)
