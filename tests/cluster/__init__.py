"""Cluster fault-tolerance (chaos) tests."""
