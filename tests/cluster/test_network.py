"""Unit tests for the interconnect model and its accounting."""

from __future__ import annotations

import pytest

from repro.cluster import Cluster, ShardedWiscSort, generate_cluster_dataset
from repro.device.stats import InterconnectStats
from repro.errors import ConfigError
from repro.records.format import RecordFormat
from repro.sim.fluid import FluidOp, NetLinkRateModel


def _flow(src, dst, nbytes=100.0):
    return FluidOp(
        nbytes, kind="net",
        attrs={"domain": "net", "src": src, "dst": dst},
    )


class TestNetLinkRateModel:
    def test_single_flow_gets_full_link(self):
        model = NetLinkRateModel(link_bw=10.0)
        op = _flow("a", "b")
        assert model.assign([op]) == {op: 10.0}

    def test_incast_splits_receive_link(self):
        model = NetLinkRateModel(link_bw=12.0)
        flows = [_flow(src, "sink") for src in ("a", "b", "c")]
        rates = model.assign(flows)
        for op in flows:
            assert rates[op] == pytest.approx(4.0)

    def test_full_duplex_tx_rx_independent(self):
        model = NetLinkRateModel(link_bw=8.0)
        fwd, rev = _flow("a", "b"), _flow("b", "a")
        rates = model.assign([fwd, rev])
        assert rates[fwd] == pytest.approx(8.0)
        assert rates[rev] == pytest.approx(8.0)

    def test_tighter_tx_bottleneck_caps_flow(self):
        # a fans out to 3 receivers: its tx link (not the rx links) is
        # the bottleneck, each flow gets a third of tx.
        model = NetLinkRateModel(link_bw=9.0)
        flows = [_flow("a", dst) for dst in ("x", "y", "z")]
        rates = model.assign(flows)
        for op in flows:
            assert rates[op] == pytest.approx(3.0)

    def test_freed_bandwidth_goes_to_survivors(self):
        model = NetLinkRateModel(link_bw=12.0)
        f1, f2 = _flow("a", "sink"), _flow("b", "sink")
        assert model.assign([f1, f2])[f1] == pytest.approx(6.0)
        assert model.assign([f1])[f1] == pytest.approx(12.0)

    def test_deterministic_assignment(self):
        model = NetLinkRateModel(link_bw=10.0)
        flows = [_flow(s, d) for s, d in
                 [("a", "b"), ("a", "c"), ("b", "c"), ("c", "a")]]
        first = model.assign(flows)
        second = model.assign(list(flows))
        assert first == second

    def test_bad_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            NetLinkRateModel(link_bw=0.0)

    def test_scalar_kernel_only(self):
        model = NetLinkRateModel()
        assert model.vector_state("net") is None


class TestClusterNetworkWiring:
    def test_shuffle_charges_the_interconnect(self, pmem, fmt):
        cluster = Cluster(shards=3, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", 2_000, fmt, seed=7)
        ShardedWiscSort(fmt).run(cluster, data)
        stats = cluster.net_stats
        assert stats.bytes_total > 0
        # Only cross-shard pairs appear; no shard talks to itself.
        for (src, dst), nbytes in stats.link_bytes.items():
            assert src != dst
            assert nbytes > 0
        assert "SHUFFLE net" in stats.tags
        assert stats.peak_bw() > 0

    def test_network_disabled_with_link_bw_none(self, pmem, fmt):
        cluster = Cluster(shards=2, profile=pmem, link_bw=None)
        assert cluster.network is None and cluster.net_stats is None
        data = generate_cluster_dataset(cluster, "input", 1_000, fmt, seed=7)
        result = ShardedWiscSort(fmt).run(cluster, data)
        assert result.validated
        with pytest.raises(ConfigError):
            cluster.net_op("shard0", "shard1", 100)

    def test_net_charging_does_not_change_output(self, pmem, fmt):
        outs = []
        for link_bw in (12.5e9, None):
            cluster = Cluster(shards=3, profile=pmem, link_bw=link_bw)
            data = generate_cluster_dataset(cluster, "input", 2_000, fmt,
                                            seed=9)
            ShardedWiscSort(fmt).run(cluster, data)
            merged = []
            for d in range(3):
                f = cluster.shards[d].fs.open(f"sharded-wiscsort.out.shard{d}")
                if f.size:
                    merged.append(f.peek())
            outs.append(b"".join(part.tobytes() for part in merged))
        assert outs[0] == outs[1]

    def test_slow_interconnect_stretches_the_run(self, pmem, fmt):
        times = []
        for link_bw in (12.5e9, 2e8):
            cluster = Cluster(shards=3, profile=pmem, link_bw=link_bw)
            data = generate_cluster_dataset(cluster, "input", 2_000, fmt,
                                            seed=9)
            ShardedWiscSort(fmt).run(cluster, data)
            times.append(cluster.now)
        assert times[1] > times[0]


class TestInterconnectStats:
    def test_observe_filters_non_net_ops(self):
        stats = InterconnectStats()
        net = _flow("a", "b")
        net.rate = 5.0
        cpu = FluidOp(10.0, kind="cpu", attrs={"domain": "shard0"})
        cpu.rate = 3.0
        stats.observe(0.0, 2.0, [net, cpu])
        assert stats.bytes_total == pytest.approx(10.0)
        assert stats.link_bytes == {("a", "b"): pytest.approx(10.0)}

    def test_timeline_and_peak(self):
        stats = InterconnectStats()
        a, b = _flow("a", "x"), _flow("b", "x")
        a.rate = 4.0
        b.rate = 4.0
        stats.observe(0.0, 1.0, [a, b])
        a.rate = 8.0
        stats.observe(1.0, 2.0, [a])
        assert stats.peak_bw() == pytest.approx(8.0)
        assert stats.timeline == [
            (0.0, 1.0, pytest.approx(8.0)),
            (1.0, 2.0, pytest.approx(8.0)),
        ]
