"""Chaos suite: byte-identity of the sharded sort under faults.

The invariant under test is the strongest one the cluster makes: no
matter which shard crashes, which shard straggles, or when a new shard
is admitted, the concatenated sorted output is byte-identical to a
single-device WiscSort over the same records -- across multiple seeds
and under both fluid kernels (run with ``REPRO_SIM_VECTOR=0/1``; the CI
``cluster-chaos`` job sweeps both).

The suite deliberately runs without the sanitizer and with an unlimited
DRAM budget: loser cancellation tears processes down mid-allocation by
design, and :meth:`~repro.cluster.cluster.Cluster.reboot` rebuilds the
DRAM pool wholesale.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import Cluster, ShardedWiscSort, generate_cluster_dataset
from repro.core.wiscsort import WiscSort
from repro.errors import RecoveryError
from repro.faults.harness import run_cluster_with_faults
from repro.faults.plan import parse_fault_spec
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset

SEEDS = [101, 202, 303]
N_RECORDS = 3_000


def _reference(pmem, n, fmt, seed):
    machine = Machine(profile=pmem)
    data = generate_dataset(machine, "input", n, fmt, seed=seed)
    result = WiscSort(fmt).run(machine, data)
    return machine.fs.open(result.output_name).peek()


def _merged_output(cluster, n_parts, output_name="sharded-wiscsort.out"):
    """Concatenate the partition outputs wherever they landed.

    Recovery and speculation may place a partition's output on a spare
    shard, so every shard is searched for each part name.
    """
    parts = []
    for d in range(n_parts):
        name = f"{output_name}.shard{d}"
        holders = [s for s in cluster.shards if s.fs.exists(name)]
        assert len(holders) == 1, f"{name} found on {len(holders)} shards"
        f = holders[0].fs.open(name)
        if f.size:
            parts.append(f.peek())
    return np.concatenate(parts)


def _no_fault_duration(pmem, n, fmt, seed, shards):
    cluster = Cluster(shards=shards, profile=pmem)
    data = generate_cluster_dataset(cluster, "input", n, fmt, seed=seed)
    ShardedWiscSort(fmt).run(cluster, data)
    return cluster.now


class TestShardCrashRecovery:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("frac", [0.35, 0.8])
    def test_crash_recovery_byte_identity(self, pmem, fmt, seed, frac):
        reference = _reference(pmem, N_RECORDS, fmt, seed)
        total = _no_fault_duration(pmem, N_RECORDS, fmt, seed, shards=3)
        cluster = Cluster(shards=3, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", N_RECORDS, fmt,
                                        seed=seed)
        plan = parse_fault_spec(f"shard1:crash@t:{frac * total}", seed=seed)
        system = ShardedWiscSort(fmt, checkpoint=True)
        result, report = run_cluster_with_faults(system, cluster, data,
                                                 plan=plan)
        assert result.validated
        assert report.crashes >= 1
        assert cluster.faults.shards_recovered == report.recoveries
        assert np.array_equal(_merged_output(cluster, 3), reference)

    def test_recovery_salvages_committed_partitions(self, pmem, fmt):
        seed = SEEDS[0]
        total = _no_fault_duration(pmem, N_RECORDS, fmt, seed, shards=3)
        cluster = Cluster(shards=3, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", N_RECORDS, fmt,
                                        seed=seed)
        # Late crash: the scatter manifests (and possibly some sorted
        # manifests) have committed; recovery must not redo everything.
        plan = parse_fault_spec(f"shard1:crash@t:{0.9 * total}", seed=seed)
        system = ShardedWiscSort(fmt, checkpoint=True)
        result, report = run_cluster_with_faults(system, cluster, data,
                                                 plan=plan)
        assert result.validated and report.crashes == 1
        rec = system.last_recovery
        assert rec is not None
        assert rec["salvaged_bytes"] > 0
        assert rec["partitions_redone"] >= 1

    def test_crash_without_checkpoint_raises(self, pmem, fmt):
        cluster = Cluster(shards=3, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", N_RECORDS, fmt,
                                        seed=SEEDS[0])
        plan = parse_fault_spec("shard1:crash@t:1e-5", seed=SEEDS[0])
        system = ShardedWiscSort(fmt, checkpoint=False)
        with pytest.raises(RecoveryError):
            run_cluster_with_faults(system, cluster, data, plan=plan)

    def test_no_fault_plan_is_passthrough(self, pmem, fmt):
        seed = SEEDS[1]
        reference = _reference(pmem, N_RECORDS, fmt, seed)
        cluster = Cluster(shards=3, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", N_RECORDS, fmt,
                                        seed=seed)
        result, report = run_cluster_with_faults(
            ShardedWiscSort(fmt), cluster, data
        )
        assert result.validated and report.crashes == 0
        assert np.array_equal(_merged_output(cluster, 3), reference)


class TestStragglerSpeculation:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_straggler_reissued_and_byte_identical(self, pmem, fmt, seed):
        reference = _reference(pmem, N_RECORDS, fmt, seed)
        total = _no_fault_duration(pmem, N_RECORDS, fmt, seed, shards=4)
        cluster = Cluster(shards=4, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", N_RECORDS, fmt,
                                        seed=seed)
        # shard0 drops to 5% throughput for the whole sort phase: its
        # partition must be re-issued on an idle shard and win there.
        plan = parse_fault_spec(
            f"shard0:slow@t:{0.55 * total}+{100 * total}:x0.05", seed=seed
        )
        system = ShardedWiscSort(fmt)
        result, _report = run_cluster_with_faults(system, cluster, data,
                                                  plan=plan)
        assert result.validated
        assert cluster.faults.speculative_issues >= 1
        assert cluster.faults.speculative_wins >= 1
        assert cluster.engine.fluid.ops_cancelled >= 1
        assert np.array_equal(_merged_output(cluster, 4), reference)

    def test_primary_win_cancels_speculative_loser(self, pmem, fmt):
        seed = SEEDS[2]
        reference = _reference(pmem, N_RECORDS, fmt, seed)
        total = _no_fault_duration(pmem, N_RECORDS, fmt, seed, shards=4)
        cluster = Cluster(shards=4, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", N_RECORDS, fmt,
                                        seed=seed)
        # The slow window starts early and covers the shuffle too, so
        # the speculative copy (which reads the straggler's staging)
        # is as slow as the primary -- the primary finishes first and
        # the speculative attempt must be cancelled and scrubbed.
        plan = parse_fault_spec(
            f"shard0:slow@t:{0.1 * total}+{100 * total}:x0.02", seed=seed
        )
        system = ShardedWiscSort(fmt)
        result, _report = run_cluster_with_faults(system, cluster, data,
                                                  plan=plan)
        assert result.validated
        assert cluster.faults.speculative_issues >= 1
        assert np.array_equal(_merged_output(cluster, 4), reference)
        for shard in cluster.shards:
            leftovers = [n for n in shard.fs.list() if ".spec" in n]
            assert leftovers == []

    def test_speculation_disabled_without_faults(self, pmem, fmt):
        cluster = Cluster(shards=3, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", N_RECORDS, fmt,
                                        seed=SEEDS[0])
        system = ShardedWiscSort(fmt)
        system.run(cluster, data)
        assert cluster.engine.fluid.ops_cancelled == 0


class TestElasticScaleOut:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_mid_run_admission_byte_identity(self, pmem, fmt, seed):
        reference = _reference(pmem, N_RECORDS, fmt, seed)
        total = _no_fault_duration(pmem, N_RECORDS, fmt, seed, shards=3)
        cluster = Cluster(shards=3, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", N_RECORDS, fmt,
                                        seed=seed)
        cluster.engine.call_at(0.3 * total, lambda: cluster.add_shard())
        plan = parse_fault_spec(
            f"shard0:slow@t:{0.55 * total}+{100 * total}:x0.05", seed=seed
        )
        system = ShardedWiscSort(fmt)
        result, _report = run_cluster_with_faults(system, cluster, data,
                                                  plan=plan)
        assert result.validated
        assert len(cluster.shards) == 4
        assert np.array_equal(_merged_output(cluster, 3), reference)

        # The next run plans over the grown cluster: one partition per
        # shard, i.e. the splitters are rebalanced to 4-way.
        data2 = generate_cluster_dataset(cluster, "input2", N_RECORDS, fmt,
                                         seed=seed)
        system2 = ShardedWiscSort(fmt, output_name="run2.out")
        result2 = system2.run(cluster, data2)
        assert result2.validated
        assert len(data2.parts) == 4
        assert system2.splitters.shape == (3, fmt.key_size)
        merged2 = _merged_output(cluster, 4, output_name="run2.out")
        assert np.array_equal(merged2, reference)


class TestCombinedChaos:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_crash_plus_straggler(self, pmem, fmt, seed):
        reference = _reference(pmem, N_RECORDS, fmt, seed)
        total = _no_fault_duration(pmem, N_RECORDS, fmt, seed, shards=4)
        cluster = Cluster(shards=4, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", N_RECORDS, fmt,
                                        seed=seed)
        plan = parse_fault_spec(
            f"shard1:crash@t:{0.5 * total},"
            f"shard0:slow@t:{0.4 * total}+{50 * total}:x0.1",
            seed=seed,
        )
        system = ShardedWiscSort(fmt, checkpoint=True)
        result, report = run_cluster_with_faults(system, cluster, data,
                                                 plan=plan)
        assert result.validated
        assert report.crashes >= 1
        assert np.array_equal(_merged_output(cluster, 4), reference)

    def test_counters_surface_in_selfperf(self, pmem, fmt):
        from repro.perf import collect_cluster_counters

        seed = SEEDS[0]
        total = _no_fault_duration(pmem, N_RECORDS, fmt, seed, shards=4)
        cluster = Cluster(shards=4, profile=pmem)
        data = generate_cluster_dataset(cluster, "input", N_RECORDS, fmt,
                                        seed=seed)
        plan = parse_fault_spec(
            f"shard1:crash@t:{0.5 * total},"
            f"shard0:slow@t:{0.55 * total}+{100 * total}:x0.05",
            seed=seed,
        )
        system = ShardedWiscSort(fmt, checkpoint=True)
        run_cluster_with_faults(system, cluster, data, plan=plan)
        counters = collect_cluster_counters(cluster)
        assert counters["shuffle_bytes_network"] > 0
        assert counters["shards_recovered"] >= 1
        assert "speculative_issues" in counters
        assert "speculative_wins" in counters
        assert "ops_cancelled" in counters
