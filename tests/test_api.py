"""Tests for the programmatic facade: ``RunOptions`` and ``api.sort``."""

from __future__ import annotations

import warnings

import pytest

from repro import api
from repro.api import RunOptions
from repro.core.base import SortConfig, SortResult
from repro.errors import ConfigError, UnknownSystemError
from repro.machine import Machine
from repro.records.format import RecordFormat


class TestRunOptions:
    def test_defaults_mirror_classic_sort(self):
        o = RunOptions()
        assert o.records == 100_000
        assert o.system == "wiscsort"
        assert o.device == "pmem"
        assert o.seed == 42
        assert o.validate is True
        assert o.faults is None

    def test_frozen(self):
        o = RunOptions()
        with pytest.raises(AttributeError):
            o.records = 1

    def test_replace_derives_variants(self):
        base = RunOptions(records=5_000, seed=7)
        traced = base.replace(trace="out.json")
        assert traced.trace == "out.json"
        assert traced.records == 5_000
        assert base.trace is None  # original untouched

    def test_effective_format_and_config_filled(self):
        o = RunOptions()
        assert isinstance(o.record_format, RecordFormat)
        assert isinstance(o.sort_config, SortConfig)
        fmt = RecordFormat(key_size=8, value_size=24)
        assert RunOptions(fmt=fmt).record_format is fmt

    def test_validation_rejects_bad_fields(self):
        with pytest.raises(ConfigError):
            RunOptions(records=-1)
        with pytest.raises(ConfigError):
            RunOptions(fmt="10x90")
        with pytest.raises(ConfigError):
            RunOptions(config={"read_buffer": 1})


class TestFacade:
    def test_default_sort_validates(self):
        result = api.sort(RunOptions(records=2_000))
        assert isinstance(result, SortResult)
        assert result.validated
        assert result.total_time > 0
        assert result.phases  # per-tag breakdown present
        assert isinstance(result.extras["machine"], Machine)

    def test_no_options_means_defaults(self):
        # api.sort() with nothing at all still runs the classic default.
        result = api.sort(RunOptions(records=1_000))
        assert result.validated

    def test_system_and_device_by_registry_name(self):
        result = api.sort(
            RunOptions(records=1_000, system="ems", device="brd-device")
        )
        assert result.validated
        machine = result.extras["machine"]
        assert "brd-device" in machine.profile.describe()

    def test_custom_format_and_config(self):
        fmt = RecordFormat(key_size=8, value_size=24)
        config = SortConfig(read_buffer=1 << 16)
        result = api.sort(
            RunOptions(records=1_500, fmt=fmt, config=config, seed=3)
        )
        assert result.validated

    def test_unknown_names_raise(self):
        with pytest.raises(UnknownSystemError):
            api.sort(RunOptions(records=100, system="bogosort"))
        with pytest.raises(UnknownSystemError):
            api.sort(RunOptions(records=100, device="tape-drive"))

    def test_validate_false_skips_validation(self):
        result = api.sort(RunOptions(records=1_000, validate=False))
        assert not result.validated

    def test_sanitize_runs_clean(self):
        result = api.sort(RunOptions(records=1_000, sanitize=True))
        sanitizer = result.extras["sanitizer"]
        report = sanitizer.audit_report()
        assert report["moved_read"] > 0
        assert report["moved_write"] > 0

    def test_deterministic_across_calls(self):
        a = api.sort(RunOptions(records=2_000, seed=9))
        b = api.sort(RunOptions(records=2_000, seed=9))
        assert a.total_time == b.total_time
        assert a.phases == b.phases

    def test_non_options_positional_rejected(self):
        with pytest.raises(ConfigError):
            api.sort({"records": 100})


class TestLegacyShim:
    def test_loose_keywords_warn_and_match(self):
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            legacy = api.sort(records=2_000, seed=9)
        modern = api.sort(RunOptions(records=2_000, seed=9))
        assert legacy.total_time == modern.total_time
        assert legacy.phases == modern.phases

    def test_records_positional_still_works(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = api.sort(1_000)
        assert result.validated

    def test_options_plus_keywords_rejected(self):
        with pytest.raises(ConfigError):
            api.sort(RunOptions(records=100), seed=1)

    def test_unknown_keyword_rejected(self):
        with pytest.raises(ConfigError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                api.sort(recordz=100)


class TestFacadeFaults:
    def test_crash_spec_recovers(self):
        result = api.sort(RunOptions(records=10_000, faults="crash@50%"))
        assert result.validated
        report = result.extras["fault_report"]
        assert report.crashes >= 1

    def test_crash_on_non_checkpointing_system_rejected(self):
        with pytest.raises(ConfigError):
            api.sort(RunOptions(
                records=1_000, system="sample-sort", faults="crash@op:1"
            ))
