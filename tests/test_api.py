"""Tests for the programmatic facade ``repro.api.sort``."""

from __future__ import annotations

import pytest

from repro import api
from repro.core.base import SortConfig, SortResult
from repro.errors import UnknownSystemError
from repro.machine import Machine
from repro.records.format import RecordFormat


class TestFacade:
    def test_default_sort_validates(self):
        result = api.sort(records=2_000)
        assert isinstance(result, SortResult)
        assert result.validated
        assert result.total_time > 0
        assert result.phases  # per-tag breakdown present
        assert isinstance(result.extras["machine"], Machine)

    def test_system_and_device_by_registry_name(self):
        result = api.sort(records=1_000, system="ems", device="brd-device")
        assert result.validated
        machine = result.extras["machine"]
        assert "brd-device" in machine.profile.describe()

    def test_custom_format_and_config(self):
        fmt = RecordFormat(key_size=8, value_size=24)
        config = SortConfig(read_buffer=1 << 16)
        result = api.sort(records=1_500, fmt=fmt, config=config, seed=3)
        assert result.validated

    def test_unknown_names_raise(self):
        with pytest.raises(UnknownSystemError):
            api.sort(records=100, system="bogosort")
        with pytest.raises(UnknownSystemError):
            api.sort(records=100, device="tape-drive")

    def test_validate_false_skips_validation(self):
        result = api.sort(records=1_000, validate=False)
        assert not result.validated

    def test_sanitize_runs_clean(self):
        result = api.sort(records=1_000, sanitize=True)
        sanitizer = result.extras["sanitizer"]
        report = sanitizer.audit_report()
        assert report["moved_read"] > 0
        assert report["moved_write"] > 0

    def test_deterministic_across_calls(self):
        a = api.sort(records=2_000, seed=9)
        b = api.sort(records=2_000, seed=9)
        assert a.total_time == b.total_time
        assert a.phases == b.phases


class TestFacadeFaults:
    def test_crash_spec_recovers(self):
        result = api.sort(records=10_000, faults="crash@50%")
        assert result.validated
        report = result.extras["fault_report"]
        assert report.crashes >= 1

    def test_crash_on_non_checkpointing_system_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            api.sort(records=1_000, system="sample-sort", faults="crash@op:1")
