"""Tests for unit helpers."""

from __future__ import annotations

import pytest

from repro.units import (
    ceil_div,
    fmt_bandwidth,
    fmt_bytes,
    fmt_seconds,
    round_up,
)


class TestFormatting:
    def test_fmt_bytes(self):
        assert fmt_bytes(512) == "512B"
        assert fmt_bytes(1536) == "1.50KiB"
        assert fmt_bytes(10 * 1024 * 1024) == "10.00MiB"
        assert fmt_bytes(3 * 1024**3) == "3.00GiB"

    def test_fmt_seconds_scales(self):
        assert fmt_seconds(2.5) == "2.500s"
        assert fmt_seconds(0.0025) == "2.500ms"
        assert fmt_seconds(2.5e-6) == "2.500us"
        assert fmt_seconds(2.5e-9) == "2.5ns"

    def test_fmt_bandwidth(self):
        assert fmt_bandwidth(22.2e9) == "22.20GB/s"


class TestMath:
    @pytest.mark.parametrize(
        "num, den, expected",
        [(10, 3, 4), (9, 3, 3), (1, 3, 1), (0, 3, 0), (100, 1, 100)],
    )
    def test_ceil_div(self, num, den, expected):
        assert ceil_div(num, den) == expected

    def test_ceil_div_zero_denominator(self):
        with pytest.raises(ValueError):
            ceil_div(1, 0)

    def test_round_up(self):
        assert round_up(100, 256) == 256
        assert round_up(256, 256) == 256
        assert round_up(257, 256) == 512
