"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, SYSTEMS, build_parser, main


class TestParser:
    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.system == "wiscsort"
        assert args.device == "pmem"
        assert args.records == 100_000

    def test_bench_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--system", "bogosort"])

    def test_every_system_has_a_constructor(self):
        assert set(SYSTEMS) >= {
            "wiscsort", "ems", "pmsort", "pmsort+", "sample-sort",
            "modified-key-sort",
        }

    def test_every_figure_has_an_experiment(self):
        for fig in ("fig01", "fig04", "fig05", "fig06", "fig07",
                    "fig08", "fig09", "fig10", "fig11", "tab01"):
            assert fig in EXPERIMENTS


class TestCommands:
    def test_sort_command_runs(self, capsys):
        rc = main(["sort", "--records", "2000", "--system", "wiscsort"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validated" in out
        assert "RUN read" in out

    def test_sort_with_timeline(self, capsys):
        rc = main(["sort", "--records", "2000", "--timeline", "--no-validate"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resource usage" in out

    def test_sort_on_emulated_device(self, capsys):
        rc = main([
            "sort", "--records", "1000", "--device", "brd-device",
            "--system", "ems",
        ])
        assert rc == 0
        assert "brd-device" in capsys.readouterr().out

    def test_sort_with_dram_budget_forces_merge(self, capsys):
        rc = main([
            "sort", "--records", "5000", "--dram-budget", "30000",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MERGE write" in out  # MergePass phases present

    def test_calibrate_command(self, capsys):
        rc = main(["calibrate", "--device", "pmem"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "seq-read" in out and "pool=" in out

    def test_bench_command_smoke(self, capsys):
        rc = main(["bench", "fig09", "--scale", "20000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strided" in out

    def test_bench_tab01(self, capsys):
        rc = main(["bench", "tab01"])
        assert rc == 0
        assert "wiscsort" in capsys.readouterr().out

    def test_profiles_command(self, capsys):
        rc = main(["profiles"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("pmem", "dram", "bd-device", "brd-device", "bard-device"):
            assert name in out


class TestFaultsFlag:
    def test_crash_fraction_probes_and_recovers(self, capsys):
        rc = main([
            "sort", "--records", "20000", "--system", "wiscsort",
            "--faults", "crash@50%",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validated" in out
        assert "1 crash(es)" in out and "1 recovery(ies)" in out
        assert "salvaged" in out

    def test_transient_faults_report_retries(self, capsys):
        rc = main([
            "sort", "--records", "20000", "--system", "wiscsort",
            "--faults", "transient@op:1,seed:3", "--selfperf",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 injected" in out
        assert "retries" in out and "backoff" in out

    def test_crash_on_non_checkpointing_system_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main([
                "sort", "--records", "2000", "--system", "sample-sort",
                "--faults", "crash@op:1",
            ])

    def test_ems_crash_recovers(self, capsys):
        rc = main([
            "sort", "--records", "20000", "--system", "ems",
            "--faults", "crash@op:5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validated" in out
        assert "1 crash(es)" in out


class TestServeCommand:
    def test_serve_runs_and_reports(self, capsys):
        rc = main([
            "serve", "--rate", "500", "--horizon", "0.02",
            "--records", "1000", "--policy", "fifo",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "sort service report: policy=fifo" in out
        assert "p999" in out

    def test_serve_policy_choices_come_from_registry(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--policy", "lifo"])
        err = capsys.readouterr().err
        assert "edf" in err and "backpressure" in err

    def test_serve_slo_failure_exits_nonzero(self, capsys):
        rc = main([
            "serve", "--rate", "500", "--horizon", "0.02",
            "--records", "1000", "--slo", "latency:p99<1e-12",
        ])
        out = capsys.readouterr().out
        assert rc == 1
        assert "FAIL" in out

    def test_serve_report_json_is_deterministic(self, tmp_path, capsys):
        args = [
            "serve", "--rate", "2000", "--horizon", "0.01",
            "--records", "1000", "--policy", "shed", "--queue-cap", "8",
            "--dram-budget", "48000000",
        ]
        path_a = str(tmp_path / "a.json")
        path_b = str(tmp_path / "b.json")
        assert main(args + ["--report", path_a]) == 0
        assert main(args + ["--report", path_b]) == 0
        capsys.readouterr()
        assert open(path_a).read() == open(path_b).read()

    def test_serve_trace_replay(self, tmp_path, capsys):
        trace = tmp_path / "arrivals.jsonl"
        trace.write_text('{"t": 0.0}\n{"t": 1e-05}\n', encoding="utf-8")
        rc = main([
            "serve", "--arrivals", "trace", "--trace-file", str(trace),
            "--records", "1000",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "arrived=2" in out

    def test_serve_bad_spec_exits_2(self, capsys):
        rc = main([
            "serve", "--rate", "100", "--horizon", "0.01",
            "--slo", "latency:q99<0.5",
        ])
        assert rc == 2
        assert "serve:" in capsys.readouterr().err


class TestAnalyzeCommand:
    def test_analyze_prints_decomposition_and_blame(self, capsys):
        rc = main([
            "analyze", "--records", "5000", "--dram-budget", "30000",
            "--no-validate",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "critical-path decomposition" in out
        assert "device_busy" in out and "dram_stall" in out
        assert "blame" in out
        assert "phase:run-generation" in out
        assert "phase:final-merge" in out

    def test_analyze_what_if_projection(self, capsys):
        rc = main([
            "analyze", "--records", "5000", "--no-validate",
            "--what-if", "write_bw*2", "--what-if", "dram+4GiB",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "what-if write_bw*2" in out
        assert "what-if dram+4GiB" in out
        assert "speedup" in out

    def test_analyze_bad_what_if_exits_2(self, capsys):
        rc = main([
            "analyze", "--records", "1000", "--what-if", "bogus*2",
        ])
        assert rc == 2
        assert "what-if" in capsys.readouterr().err

    def test_analyze_json_report_is_byte_deterministic(self, tmp_path,
                                                       capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            rc = main([
                "analyze", "--records", "2000", "--no-validate",
                "--json", str(path),
            ])
            assert rc == 0
        capsys.readouterr()
        blobs = [p.read_bytes() for p in paths]
        assert blobs[0] == blobs[1]
        import json as _json

        doc = _json.loads(blobs[0])
        assert doc["schema"] == 1 and doc["kind"] == "analysis"


class TestTraceDiffCommand:
    def _report(self, tmp_path, name, records="2000"):
        path = tmp_path / name
        rc = main([
            "analyze", "--records", records, "--no-validate",
            "--json", str(path),
        ])
        assert rc == 0
        return path

    def test_self_diff_is_clean_exit_0(self, tmp_path, capsys):
        a = self._report(tmp_path, "a.json")
        capsys.readouterr()
        rc = main(["trace-diff", str(a), str(a)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 regression(s)" in out

    def test_regression_exits_1(self, tmp_path, capsys):
        import json as _json

        a = self._report(tmp_path, "a.json")
        doc = _json.loads(a.read_text())
        doc["phases"][0]["duration"] *= 2.0
        b = tmp_path / "b.json"
        b.write_text(_json.dumps(doc))
        capsys.readouterr()
        rc = main(["trace-diff", str(a), str(b)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "REGRESSION" in out

    def test_kind_mismatch_exits_2(self, tmp_path, capsys):
        import json as _json

        a = self._report(tmp_path, "a.json")
        b = tmp_path / "selfperf.json"
        b.write_text(_json.dumps({"schema": 1, "workloads": {}}))
        capsys.readouterr()
        rc = main(["trace-diff", str(a), str(b)])
        assert rc == 2
        assert "kinds differ" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        rc = main([
            "trace-diff", str(tmp_path / "no.json"), str(tmp_path / "no.json"),
        ])
        assert rc == 2


class TestServeBurnMonitor:
    def test_burn_window_reports_monitor(self, capsys):
        rc = main([
            "serve", "--records", "2000", "--rate", "500", "--horizon",
            "0.01", "--slo", "latency:p99<1e-9", "--burn-window", "0.01",
            "--burn-alert", "1.0",
        ])
        out = capsys.readouterr().out
        assert rc == 1  # the impossible SLO fails the run
        assert "burn monitor" in out
        assert "ALERT" in out

    def test_burn_window_requires_slo(self, capsys):
        rc = main([
            "serve", "--records", "2000", "--horizon", "0.01",
            "--burn-window", "0.01",
        ])
        assert rc == 2
        assert "--slo" in capsys.readouterr().err
