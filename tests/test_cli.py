"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import EXPERIMENTS, SYSTEMS, build_parser, main


class TestParser:
    def test_sort_defaults(self):
        args = build_parser().parse_args(["sort"])
        assert args.system == "wiscsort"
        assert args.device == "pmem"
        assert args.records == 100_000

    def test_bench_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_unknown_system_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sort", "--system", "bogosort"])

    def test_every_system_has_a_constructor(self):
        assert set(SYSTEMS) >= {
            "wiscsort", "ems", "pmsort", "pmsort+", "sample-sort",
            "modified-key-sort",
        }

    def test_every_figure_has_an_experiment(self):
        for fig in ("fig01", "fig04", "fig05", "fig06", "fig07",
                    "fig08", "fig09", "fig10", "fig11", "tab01"):
            assert fig in EXPERIMENTS


class TestCommands:
    def test_sort_command_runs(self, capsys):
        rc = main(["sort", "--records", "2000", "--system", "wiscsort"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validated" in out
        assert "RUN read" in out

    def test_sort_with_timeline(self, capsys):
        rc = main(["sort", "--records", "2000", "--timeline", "--no-validate"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "resource usage" in out

    def test_sort_on_emulated_device(self, capsys):
        rc = main([
            "sort", "--records", "1000", "--device", "brd-device",
            "--system", "ems",
        ])
        assert rc == 0
        assert "brd-device" in capsys.readouterr().out

    def test_sort_with_dram_budget_forces_merge(self, capsys):
        rc = main([
            "sort", "--records", "5000", "--dram-budget", "30000",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MERGE write" in out  # MergePass phases present

    def test_calibrate_command(self, capsys):
        rc = main(["calibrate", "--device", "pmem"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "seq-read" in out and "pool=" in out

    def test_bench_command_smoke(self, capsys):
        rc = main(["bench", "fig09", "--scale", "20000"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "strided" in out

    def test_bench_tab01(self, capsys):
        rc = main(["bench", "tab01"])
        assert rc == 0
        assert "wiscsort" in capsys.readouterr().out

    def test_profiles_command(self, capsys):
        rc = main(["profiles"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("pmem", "dram", "bd-device", "brd-device", "bard-device"):
            assert name in out


class TestFaultsFlag:
    def test_crash_fraction_probes_and_recovers(self, capsys):
        rc = main([
            "sort", "--records", "20000", "--system", "wiscsort",
            "--faults", "crash@50%",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validated" in out
        assert "1 crash(es)" in out and "1 recovery(ies)" in out
        assert "salvaged" in out

    def test_transient_faults_report_retries(self, capsys):
        rc = main([
            "sort", "--records", "20000", "--system", "wiscsort",
            "--faults", "transient@op:1,seed:3", "--selfperf",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "1 injected" in out
        assert "retries" in out and "backoff" in out

    def test_crash_on_non_checkpointing_system_rejected(self):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            main([
                "sort", "--records", "2000", "--system", "sample-sort",
                "--faults", "crash@op:1",
            ])

    def test_ems_crash_recovers(self, capsys):
        rc = main([
            "sort", "--records", "20000", "--system", "ems",
            "--faults", "crash@op:5",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "validated" in out
        assert "1 crash(es)" in out
