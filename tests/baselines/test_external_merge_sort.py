"""Correctness tests for the external merge sort baseline."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.external_merge_sort import ExternalMergeSort
from repro.core.base import ConcurrencyModel, SortConfig
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset

ALL_MODELS = [
    ConcurrencyModel.NO_IO_OVERLAP,
    ConcurrencyModel.IO_OVERLAP,
    ConcurrencyModel.NO_SYNC,
]


def ems_run(pmem, n, fmt=None, config=None, seed=0):
    fmt = fmt or RecordFormat()
    machine = Machine(profile=pmem)
    f = generate_dataset(machine, "input", n, fmt, seed=seed)
    system = ExternalMergeSort(fmt, config=config)
    return machine, system.run(machine, f)


class TestCorrectness:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_all_concurrency_models(self, pmem, model):
        config = SortConfig(
            concurrency=model, read_buffer=64 * 1024, write_buffer=32 * 1024
        )
        _, result = ems_run(pmem, 5_000, config=config)
        assert result.n_records == 5_000

    def test_single_chunk_input(self, pmem):
        # Input smaller than the read buffer -> one run, trivial merge.
        _, result = ems_run(pmem, 100)
        assert result.n_records == 100

    def test_many_runs(self, pmem):
        config = SortConfig(read_buffer=16 * 1024, write_buffer=8 * 1024)
        _, result = ems_run(pmem, 5_000, config=config)
        assert result.n_records == 5_000

    def test_empty_input(self, pmem):
        _, result = ems_run(pmem, 0)
        assert result.n_records == 0

    def test_run_files_cleaned_up(self, pmem):
        machine, _ = ems_run(pmem, 2_000)
        assert not [n for n in machine.fs.list() if ".run." in n]

    def test_misaligned_input_rejected(self, pmem):
        machine = Machine(profile=pmem)
        f = machine.fs.create("input")
        f.poke(0, np.zeros(123, dtype=np.uint8))
        with pytest.raises(ConfigError):
            ExternalMergeSort(RecordFormat()).run(machine, f)

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(0, 500), seed=st.integers(0, 20))
    def test_random_property(self, pmem, n, seed):
        fmt = RecordFormat(key_size=5, value_size=11)
        config = SortConfig(read_buffer=8 * 1024, write_buffer=4 * 1024)
        machine = Machine(profile=pmem)
        f = generate_dataset(machine, "input", n, fmt, seed=seed)
        ExternalMergeSort(fmt, config=config).run(machine, f)


class TestTrafficAccounting:
    def test_ems_reads_and_writes_dataset_twice(self, pmem):
        # EMS moves whole records through run + merge: user traffic is
        # ~2x the dataset in each direction.
        fmt = RecordFormat()
        _, result = ems_run(pmem, 5_000, fmt)
        dataset = 5_000 * fmt.record_size
        assert result.user_written == pytest.approx(2 * dataset, rel=0.01)
        assert result.user_read >= 2 * dataset * 0.99

    def test_phase_tags_present(self, pmem):
        _, result = ems_run(pmem, 3_000)
        for tag in ("RUN read", "RUN sort", "RUN other", "RUN write",
                    "MERGE read", "MERGE other", "MERGE write"):
            assert result.phase(tag) > 0, tag
