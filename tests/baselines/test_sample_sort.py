"""Correctness and cost-model tests for in-place sample sort."""

from __future__ import annotations

import pytest

from repro.baselines.sample_sort import SampleSort, SampleSortCostModel
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset


def run_sample(profile, n, fmt=None, cost=None, seed=0):
    fmt = fmt or RecordFormat()
    machine = Machine(profile=profile)
    f = generate_dataset(machine, "input", n, fmt, seed=seed)
    system = SampleSort(fmt, cost=cost)
    return machine, system.run(machine, f)


class TestCorrectness:
    def test_output_is_sorted_permutation(self, pmem):
        _, result = run_sample(pmem, 3_000)
        assert result.n_records == 3_000

    def test_empty_input(self, pmem):
        _, result = run_sample(pmem, 0)
        assert result.n_records == 0

    def test_duplicate_keys(self, pmem, fmt):
        machine = Machine(profile=pmem)
        f = generate_dataset(machine, "input", 500, fmt, seed=1)
        data = f.peek().reshape(-1, fmt.record_size)
        data[:, : fmt.key_size] = 1
        f.poke(0, data.reshape(-1))
        result = SampleSort(fmt).run(machine, f)
        assert result.n_records == 500


class TestCostModel:
    def test_dram_much_faster_than_pmem(self, pmem, dram):
        _, on_pmem = run_sample(pmem, 5_000)
        _, on_dram = run_sample(dram, 5_000)
        # Sec 2.4.1: in-place sorting on DRAM is ~10x faster than on PMEM.
        ratio = on_pmem.total_time / on_dram.total_time
        assert 5 <= ratio <= 15

    def test_traffic_scales_with_passes(self, pmem):
        light = SampleSortCostModel(
            rand_read_passes=0.5, seq_read_passes=1.0, write_passes=0.5
        )
        heavy = SampleSortCostModel(
            rand_read_passes=2.0, seq_read_passes=4.0, write_passes=3.0
        )
        _, a = run_sample(pmem, 3_000, cost=light)
        _, b = run_sample(pmem, 3_000, cost=heavy)
        assert b.total_time > a.total_time
        assert b.internal_read > a.internal_read

    def test_streams_overlap(self, pmem):
        # Total time is far less than the sum of per-stream busy times
        # because reads, writes and compute all run concurrently.
        _, result = run_sample(pmem, 5_000)
        busy_sum = sum(result.phases.values())
        assert result.total_time < busy_sum

    def test_negative_passes_rejected(self):
        with pytest.raises(ConfigError):
            SampleSortCostModel(write_passes=-1.0)

    def test_zero_pass_components_allowed(self, pmem):
        cost = SampleSortCostModel(
            rand_read_passes=0.0, seq_read_passes=0.0, write_passes=1.0
        )
        _, result = run_sample(pmem, 1_000, cost=cost)
        assert result.total_time > 0
