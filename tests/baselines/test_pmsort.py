"""Correctness tests for PMSort and PMSort+."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pmsort import PMSort, PMSortPlus
from repro.core.base import ConcurrencyModel, SortConfig
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset


def run_system(pmem, system, n, fmt, seed=0):
    machine = Machine(profile=pmem)
    f = generate_dataset(machine, "input", n, fmt, seed=seed)
    return machine, system.run(machine, f)


class TestPMSortSingle:
    def test_sorts_correctly(self, pmem, fmt):
        _, result = run_system(pmem, PMSort(fmt), 3_000, fmt)
        assert result.n_records == 3_000

    def test_multiple_runs(self, pmem, fmt):
        system = PMSort(fmt, config=SortConfig(
            read_buffer=32 * 1024, write_buffer=16 * 1024))
        _, result = run_system(pmem, system, 2_000, fmt)
        assert result.n_records == 2_000

    def test_empty_input(self, pmem, fmt):
        _, result = run_system(pmem, PMSort(fmt), 0, fmt)
        assert result.n_records == 0

    def test_indexmap_runs_cleaned(self, pmem, fmt):
        machine, _ = run_system(pmem, PMSort(fmt), 1_000, fmt)
        assert not [n for n in machine.fs.list() if "indexmap" in n]

    def test_is_slower_than_multithreaded_variants(self, pmem, fmt):
        # The paper's whole point: single-threaded PMSort leaves the
        # device's concurrency on the table.
        _, single = run_system(pmem, PMSort(fmt), 5_000, fmt)
        _, plus = run_system(pmem, PMSortPlus(fmt), 5_000, fmt)
        assert single.total_time > 2 * plus.total_time

    @settings(max_examples=6, deadline=None)
    @given(n=st.integers(1, 300), seed=st.integers(0, 10))
    def test_random_property(self, pmem, n, seed):
        fmt = RecordFormat(key_size=4, value_size=12, pointer_size=4)
        run_system(pmem, PMSort(fmt), n, fmt, seed=seed)


class TestPMSortPlus:
    @pytest.mark.parametrize(
        "model", [ConcurrencyModel.NO_SYNC, ConcurrencyModel.IO_OVERLAP]
    )
    def test_sorts_under_both_models(self, pmem, fmt, model):
        system = PMSortPlus(fmt, config=SortConfig(concurrency=model))
        _, result = run_system(pmem, system, 5_000, fmt)
        assert result.n_records == 5_000

    def test_no_io_overlap_rejected(self, fmt):
        # Key-value separation + interference-aware scheduling IS
        # WiscSort; PMSortPlus refuses to impersonate it.
        with pytest.raises(ConfigError):
            PMSortPlus(fmt, config=SortConfig(
                concurrency=ConcurrencyModel.NO_IO_OVERLAP))

    def test_default_is_io_overlap(self, fmt):
        assert PMSortPlus(fmt).config.concurrency is ConcurrencyModel.IO_OVERLAP

    def test_io_overlap_beats_no_sync(self, pmem, fmt):
        _, overlap = run_system(pmem, PMSortPlus(fmt), 5_000, fmt)
        nosync = PMSortPlus(fmt, config=SortConfig(
            concurrency=ConcurrencyModel.NO_SYNC))
        _, ns = run_system(pmem, nosync, 5_000, fmt)
        assert ns.total_time > overlap.total_time
