"""Tests for the Hubbard-1963 modified-key sort baseline."""

from __future__ import annotations

import pytest

from repro.baselines.modified_key_sort import ModifiedKeySort
from repro.baselines.external_merge_sort import ExternalMergeSort
from repro.core.wiscsort import WiscSort
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.gensort import generate_dataset


def run(pmem, system, n, fmt, seed=0):
    machine = Machine(profile=pmem)
    f = generate_dataset(machine, "input", n, fmt, seed=seed)
    return machine, system.run(machine, f)


class TestCorrectness:
    def test_sorts_correctly_single_pass(self, pmem, fmt):
        system = ModifiedKeySort(fmt)
        _, result = run(pmem, system, 2_000, fmt)
        assert result.n_records == 2_000
        assert system.gather_passes == 1

    def test_sorts_correctly_many_passes(self, pmem, fmt):
        system = ModifiedKeySort(fmt, gather_memory=400 * fmt.record_size)
        _, result = run(pmem, system, 2_000, fmt)
        assert result.n_records == 2_000
        assert system.gather_passes == 5

    def test_empty_input(self, pmem, fmt):
        _, result = run(pmem, ModifiedKeySort(fmt), 0, fmt)
        assert result.n_records == 0

    def test_tiny_gather_memory_rejected(self, fmt):
        with pytest.raises(ConfigError):
            ModifiedKeySort(fmt, gather_memory=10)


class TestCostShape:
    def test_gather_passes_scale_read_traffic(self, pmem, fmt):
        n = 2_000
        machine1, _ = run(pmem, ModifiedKeySort(fmt), n, fmt)
        system = ModifiedKeySort(fmt, gather_memory=(n // 4) * fmt.record_size)
        machine4, _ = run(pmem, system, n, fmt)
        # Four sweeps read 4x the single sweep's bytes.
        one = machine1.stats.tags["GATHER sweep"].internal_bytes
        four = machine4.stats.tags["GATHER sweep"].internal_bytes
        assert four == pytest.approx(4 * one, rel=0.01)

    def test_avoids_intermediate_writes(self, pmem, fmt):
        # The (A)-compliance of Table 1: values are written exactly once.
        n = 2_000
        _, mks = run(pmem, ModifiedKeySort(fmt), n, fmt)
        assert mks.user_written == pytest.approx(n * fmt.record_size)

    def test_loses_to_wiscsort_on_braid(self, pmem, fmt):
        # Sec 2.4.3's point: avoiding random reads is obsolete on BRAID.
        n = 20_000
        system = ModifiedKeySort(fmt, gather_memory=(n // 4) * fmt.record_size)
        _, mks = run(pmem, system, n, fmt)
        _, wisc = run(pmem, WiscSort(fmt), n, fmt)
        assert mks.total_time > 2 * wisc.total_time

    def test_competitive_when_memory_is_large(self, pmem, fmt):
        # With one gather pass it degenerates to scan+scan+write --
        # cheap on writes, so it can beat EMS despite single threading.
        n = 10_000
        _, mks = run(pmem, ModifiedKeySort(fmt), n, fmt)
        _, ems = run(pmem, ExternalMergeSort(fmt), n, fmt)
        assert mks.user_written < ems.user_written
