"""Tests for the Machine facade."""

from __future__ import annotations

import pytest

from repro.device.profile import Pattern
from repro.machine import Machine
from repro.units import GB


class TestOpBuilders:
    def test_io_op_time_matches_curves(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 30, tag="r", threads=16)

        machine.run(job())
        assert machine.now == pytest.approx((1 << 30) / pmem.seq_read.peak, rel=0.01)

    def test_compute_duration(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.compute(0.004, tag="c", cores=4)

        machine.run(job())
        assert machine.now == pytest.approx(0.001)

    def test_copy_capped_by_core_bandwidth(self, pmem):
        machine = Machine(profile=pmem)
        nbytes = int(machine.host.copy_bw_per_core)  # 1 second single-core

        def job():
            yield machine.copy(nbytes, tag="c", cores=1)

        machine.run(job())
        assert machine.now == pytest.approx(1.0, rel=0.01)

    def test_sort_compute_scales_nlogn(self, pmem):
        machine = Machine(profile=pmem)
        a = machine.host.sort_seconds(1000)
        b = machine.host.sort_seconds(2000)
        assert b > 2 * a  # superlinear

    def test_io_raw_uses_explicit_work(self, pmem):
        machine = Machine(profile=pmem)
        op = machine.io_raw(1024.0, "read", Pattern.SEQ, 100, tag="raw")
        assert op.work == 1024.0
        assert op.attrs["host_ratio"] == pytest.approx(100 / 1024)

    def test_sequential_ops_accumulate_time(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 * GB, tag="r", threads=16)
            yield machine.io("write", Pattern.SEQ, 1 * GB, tag="w", threads=5)

        machine.run(job())
        expected = 1 * GB / pmem.seq_read.peak + 1 * GB / pmem.write.peak
        assert machine.now == pytest.approx(expected, rel=0.01)


class TestPrimitiveFactories:
    def test_factories_bound_to_engine(self, pmem):
        machine = Machine(profile=pmem)
        barrier = machine.barrier(2)
        sem = machine.semaphore(1)
        q = machine.queue(maxsize=4)
        assert barrier.parties == 2
        assert sem.value == 1
        assert q.maxsize == 4

    def test_dram_budget_wired(self, pmem):
        machine = Machine(profile=pmem, dram_budget=1000)
        assert machine.dram.budget == 1000

    def test_defaults(self):
        machine = Machine()
        assert machine.profile.name == "pmem"
        assert machine.host.ncores == 16
