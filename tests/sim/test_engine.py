"""Unit tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim.engine import Engine, Join, Now, Sleep, Spawn
from repro.sim.fluid import FluidOp, UniformRateModel


def make_engine(rate: float = 1.0) -> Engine:
    return Engine(UniformRateModel(rate))


class TestSleep:
    def test_sleep_advances_clock(self):
        engine = make_engine()

        def proc():
            yield Sleep(2.5)
            return (yield Now())

        assert engine.run_process(proc()) == pytest.approx(2.5)

    def test_sleep_zero_is_allowed(self):
        engine = make_engine()

        def proc():
            yield Sleep(0.0)
            return "done"

        assert engine.run_process(proc()) == "done"
        assert engine.now == 0.0

    def test_negative_sleep_rejected(self):
        with pytest.raises(ValueError):
            Sleep(-1.0)

    def test_sleeps_interleave_in_time_order(self):
        engine = make_engine()
        log = []

        def sleeper(delay, label):
            yield Sleep(delay)
            log.append(label)

        engine.spawn(sleeper(3.0, "c"))
        engine.spawn(sleeper(1.0, "a"))
        engine.spawn(sleeper(2.0, "b"))
        engine.run()
        assert log == ["a", "b", "c"]


class TestFluidOps:
    def test_op_duration_is_work_over_rate(self):
        engine = make_engine(rate=4.0)

        def proc():
            yield FluidOp(8.0, kind="cpu")

        engine.run_process(proc())
        assert engine.now == pytest.approx(2.0)

    def test_zero_work_op_completes_instantly(self):
        engine = make_engine()

        def proc():
            op = FluidOp(0.0, kind="cpu")
            result = yield op
            return result

        op = engine.run_process(proc())
        assert op.finished_at == 0.0
        assert engine.now == 0.0

    def test_on_complete_transforms_resume_value(self):
        engine = make_engine()

        def proc():
            op = FluidOp(1.0, kind="cpu")
            op.on_complete = lambda o: "payload"
            return (yield op)

        assert engine.run_process(proc()) == "payload"

    def test_concurrent_ops_share_time_axis(self):
        # Two ops at the same uniform rate run in parallel, not serially.
        engine = make_engine(rate=1.0)

        def worker():
            yield FluidOp(5.0, kind="cpu")

        engine.spawn(worker())
        engine.spawn(worker())
        engine.run()
        assert engine.now == pytest.approx(5.0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            FluidOp(-1.0, kind="cpu")

    def test_duration_before_completion_raises(self):
        op = FluidOp(1.0, kind="cpu")
        with pytest.raises(SimulationError):
            _ = op.duration


class TestSpawnJoin:
    def test_join_returns_child_result(self):
        engine = make_engine()

        def child():
            yield Sleep(1.0)
            return 42

        def parent():
            proc = yield Spawn(child())
            result = yield Join(proc)
            return result

        assert engine.run_process(parent()) == 42

    def test_join_list_preserves_argument_order(self):
        engine = make_engine()

        def child(delay, value):
            yield Sleep(delay)
            return value

        def parent():
            procs = []
            for delay, value in [(3.0, "slow"), (1.0, "fast")]:
                procs.append((yield Spawn(child(delay, value))))
            return (yield Join(procs))

        assert engine.run_process(parent()) == ["slow", "fast"]

    def test_join_already_finished_process(self):
        engine = make_engine()

        def child():
            return "early"
            yield  # pragma: no cover

        def parent():
            proc = yield Spawn(child())
            yield Sleep(1.0)
            return (yield Join(proc))

        assert engine.run_process(parent()) == "early"

    def test_join_empty_list(self):
        engine = make_engine()

        def parent():
            results = yield Join([])
            return results

        assert engine.run_process(parent()) == []


class TestRunSemantics:
    def test_run_until_stops_at_target_despite_background(self):
        engine = make_engine()

        def background():
            while True:
                yield Sleep(0.5)

        def fg():
            yield Sleep(2.0)
            return "fg-done"

        engine.spawn(background())
        proc = engine.spawn(fg())
        assert engine.run_until(proc) == "fg-done"
        assert engine.now == pytest.approx(2.0)

    def test_run_reports_final_time(self):
        engine = make_engine()

        def proc():
            yield Sleep(1.5)

        engine.spawn(proc())
        assert engine.run() == pytest.approx(1.5)

    def test_empty_engine_run_is_noop(self):
        engine = make_engine()
        assert engine.run() == 0.0

    def test_exception_in_process_propagates(self):
        engine = make_engine()

        def bad():
            yield Sleep(1.0)
            raise RuntimeError("boom")

        engine.spawn(bad())
        with pytest.raises(RuntimeError, match="boom"):
            engine.run()

    def test_unsupported_command_raises(self):
        engine = make_engine()

        def proc():
            yield "not-a-command"

        engine.spawn(proc())
        with pytest.raises(SimulationError, match="unsupported command"):
            engine.run()

    def test_call_at_runs_function_at_time(self):
        engine = make_engine()
        fired = []
        engine.call_at(3.0, lambda: fired.append(engine.now))

        def proc():
            yield Sleep(5.0)

        engine.run_process(proc())
        assert fired == [pytest.approx(3.0)]

    def test_call_at_in_past_rejected(self):
        engine = make_engine()

        def proc():
            yield Sleep(1.0)

        engine.run_process(proc())
        with pytest.raises(SimulationError):
            engine.call_at(0.5, lambda: None)


class TestDeadlockDetection:
    def test_all_ops_stalled_at_zero_rate_deadlocks(self):
        class StallModel(UniformRateModel):
            def assign(self, ops):
                return {op: 0.0 for op in ops}

        stalled = Engine(StallModel(1.0))

        def proc():
            yield FluidOp(1.0, kind="cpu")

        stalled.spawn(proc())
        with pytest.raises(DeadlockError):
            stalled.run()

    def test_run_until_raises_when_engine_runs_dry(self):
        engine = make_engine()

        def fg():
            yield Sleep(1.0)
            return "done"

        def never_spawned_target():
            yield Sleep(1.0)

        target = engine.spawn(fg())
        engine.run_until(target)  # fine
        # A fresh process object that is never spawned cannot finish.
        from repro.sim.engine import Process

        orphan = Process(never_spawned_target(), "orphan", 999)
        with pytest.raises(DeadlockError):
            engine.run_until(orphan)
