"""Edge-case tests for the event engine: ties, ordering, reuse."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, Join, Now, Sleep, Spawn
from repro.sim.fluid import FluidOp, UniformRateModel


def make_engine(rate: float = 1.0) -> Engine:
    return Engine(UniformRateModel(rate))


class TestTimingTies:
    def test_simultaneous_fluid_and_heap_events(self):
        # A sleep and an op that end at exactly the same instant must
        # both fire, in one pass, without losing either.
        engine = make_engine(rate=1.0)
        log = []

        def sleeper():
            yield Sleep(2.0)
            log.append(("sleep", engine.now))

        def worker():
            yield FluidOp(2.0, kind="cpu")
            log.append(("op", engine.now))

        engine.spawn(sleeper())
        engine.spawn(worker())
        engine.run()
        assert sorted(log) == [("op", 2.0), ("sleep", 2.0)]

    def test_zero_duration_chain(self):
        engine = make_engine()

        def proc():
            for _ in range(100):
                yield FluidOp(0.0, kind="cpu")
            return (yield Now())

        assert engine.run_process(proc()) == 0.0

    def test_many_ops_same_completion_time(self):
        engine = make_engine(rate=1.0)
        done = []

        def worker(i):
            yield FluidOp(1.0, kind="cpu")
            done.append(i)

        for i in range(20):
            engine.spawn(worker(i))
        engine.run()
        assert sorted(done) == list(range(20))
        assert engine.now == pytest.approx(1.0)


class TestProcessLifecycle:
    def test_nested_spawns(self):
        engine = make_engine()

        def grandchild():
            yield Sleep(1.0)
            return "gc"

        def child():
            proc = yield Spawn(grandchild())
            result = yield Join(proc)
            return f"child({result})"

        def root():
            proc = yield Spawn(child())
            return (yield Join(proc))

        assert engine.run_process(root()) == "child(gc)"

    def test_multiple_joiners_on_one_process(self):
        engine = make_engine()
        results = []

        def target():
            yield Sleep(1.0)
            return 7

        def waiter(proc):
            value = yield Join(proc)
            results.append(value)

        def root():
            target_proc = yield Spawn(target())
            waiters = []
            for _ in range(3):
                waiters.append((yield Spawn(waiter(target_proc))))
            yield Join(waiters)

        engine.run_process(root())
        assert results == [7, 7, 7]

    def test_engine_reusable_after_run(self):
        engine = make_engine()

        def proc():
            yield Sleep(1.0)
            return "a"

        assert engine.run_process(proc()) == "a"

        def proc2():
            yield Sleep(1.0)
            return "b"

        assert engine.run_process(proc2()) == "b"
        assert engine.now == pytest.approx(2.0)

    def test_immediate_return_process(self):
        engine = make_engine()

        def proc():
            return "instant"
            yield  # pragma: no cover

        assert engine.run_process(proc()) == "instant"
        assert engine.now == 0.0
