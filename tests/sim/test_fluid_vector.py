"""Unit tests for the vectorized fluid-kernel path.

Covers the invariants the array-backed group machinery must uphold:
deterministic op-id ordering of same-epoch completion batches (under
either kernel path and when both paths contribute to one batch),
bit-identical results between the scalar and vector solvers, promotion
thresholds and fallback counters, the ``REPRO_SIM_VECTOR`` switch, and
the ``remaining_work`` accessor for mid-flight readers.
"""

from __future__ import annotations

import pytest

from repro.sim.fluid import (
    FluidOp,
    FluidScheduler,
    RateModel,
    UniformRateModel,
    observer_code,
    remaining_work,
    vector_enabled,
)


class VectorCapacityModel(RateModel):
    """Processor sharing with the vectorized-kernel protocol.

    One shared capacity split evenly across active ops: the rate depends
    only on the population size, so every op shares one signature and
    ``assign`` is trivially signature-pure.
    """

    def __init__(self, capacity: float):
        self.capacity = capacity

    def assign(self, ops):
        ops = list(ops)
        share = self.capacity / len(ops)
        return {op: share for op in ops}

    def vector_state(self, key):
        return self.capacity

    def vector_sig(self, op):
        return "any"


class ScalarCapacityModel(VectorCapacityModel):
    """Same arithmetic, no vector protocol (stays on the scalar path)."""

    def vector_state(self, key):
        return None


def drive(sched: FluidScheduler, ops, release_times):
    """Add ops at their release times, settling/rerating in between.

    Returns ``[(finish_time, batch)]`` where each batch is the exact
    list object ``pop_completed`` returned.
    """
    events = sorted(set(release_times))
    for t in events:
        sched.settle(t)
        for op, rel in zip(ops, release_times):
            if rel == t:
                sched.add(op, t)
        sched.rerate(t)
    batches = []
    guard = 0
    while sched.active:
        t = sched.next_completion(events[-1] if not batches else batches[-1][0])
        assert t is not None, "active ops but no next completion"
        sched.settle(t)
        sched.rerate(t)
        done = sched.pop_completed(t)
        if done:
            batches.append((t, done))
        sched.settle(t)
        sched.rerate(t)
        guard += 1
        assert guard < 100, "scheduler failed to drain"
    return batches


class TestCompletionOrdering:
    """Satellite: pop_completed's documented op-id ordering invariant."""

    @pytest.mark.parametrize("vector", [False, True])
    def test_same_epoch_completions_sorted_by_op_id(self, vector):
        # Equal work + equal (shared) rate => all ops finish at the same
        # instant.  The batch must come back in ascending seq no matter
        # what internal (heap/array) order the kernel used.
        sched = FluidScheduler(VectorCapacityModel(8.0), vector=vector)
        ops = [FluidOp(8.0, kind="cpu") for _ in range(6)]
        for op in ops:
            sched.add(op, 0.0)
        sched.rerate(0.0)
        t = sched.next_completion(0.0)
        sched.settle(t)
        done = sched.pop_completed(t)
        assert done == sorted(done, key=lambda o: o.seq)
        assert {o.seq for o in done} == {o.seq for o in ops}

    def test_mixed_path_batch_is_globally_sorted(self):
        # Two resource groups: one large enough to promote, one below
        # the min-group threshold (stays on the scalar heap).  Ops are
        # interleaved by creation order across the groups; a same-time
        # completion batch must interleave them back in seq order rather
        # than concatenating group-by-group.
        class TwoGroupModel(VectorCapacityModel):
            def resource_key(self, op):
                return op.attrs["grp"]

            def vector_state(self, key):
                # Promote only the "big" group; "small" stays scalar.
                return self.capacity if key == "big" else None

        sched = FluidScheduler(TwoGroupModel(4.0), vector=True)
        sched.vector_min_group = 2
        ops = []
        for i in range(8):
            grp = "big" if i % 2 == 0 else "small"
            ops.append(FluidOp(4.0, kind="cpu", grp=grp))
        for op in ops:
            sched.add(op, 0.0)
        sched.rerate(0.0)
        assert sched.vector_solves > 0 and sched.scalar_fallbacks > 0
        t = sched.next_completion(0.0)
        sched.settle(t)
        done = sched.pop_completed(t)
        assert [o.seq for o in done] == sorted(o.seq for o in ops)

    def test_op_id_is_stable_and_monotone(self):
        a, b = FluidOp(1.0, kind="cpu"), FluidOp(1.0, kind="cpu")
        assert b.seq > a.seq
        assert a.op_id == a.seq


class TestScalarVectorEquivalence:
    def run_one(self, model, vector):
        sched = FluidScheduler(model, vector=vector)
        ops = [FluidOp(float(w), kind="cpu") for w in (10, 6, 6, 3, 14, 9)]
        releases = [0.0, 0.0, 0.0, 1.0, 1.0, 2.5]
        batches = drive(sched, ops, releases)
        return ops, batches

    def test_bitwise_identical_finish_times_and_batches(self):
        ops_s, batches_s = self.run_one(ScalarCapacityModel(4.0), vector=False)
        ops_v, batches_v = self.run_one(VectorCapacityModel(4.0), vector=True)
        # Same batch boundaries at bit-identical instants...
        assert [t for t, _ in batches_s] == [t for t, _ in batches_v]
        # ... containing the same ops (by position in creation order).
        for (_, ds), (_, dv) in zip(batches_s, batches_v):
            assert [ops_s.index(o) for o in ds] == [ops_v.index(o) for o in dv]
        for a, b in zip(ops_s, ops_v):
            assert a.started_at == b.started_at
            assert a.finished_at == b.finished_at  # exact, not approx

    def test_vector_path_actually_engaged(self):
        sched = FluidScheduler(VectorCapacityModel(4.0), vector=True)
        ops = [FluidOp(4.0, kind="cpu") for _ in range(5)]
        for op in ops:
            sched.add(op, 0.0)
        sched.rerate(0.0)
        assert sched.vector_solves == 1
        assert sched.vector_ops_solved == 5
        assert sched.scalar_fallbacks == 0


class TestPromotionThreshold:
    def test_small_group_stays_scalar(self):
        sched = FluidScheduler(VectorCapacityModel(4.0), vector=True)
        sched.vector_min_group = 8
        for _ in range(3):
            sched.add(FluidOp(4.0, kind="cpu"), 0.0)
        sched.rerate(0.0)
        assert sched.vector_solves == 0
        assert sched.scalar_fallbacks == 1

    def test_unsupporting_model_stays_scalar(self):
        sched = FluidScheduler(ScalarCapacityModel(4.0), vector=True)
        for _ in range(8):
            sched.add(FluidOp(4.0, kind="cpu"), 0.0)
        sched.rerate(0.0)
        assert sched.vector_solves == 0
        assert sched.scalar_fallbacks == 1

    def test_per_op_groups_never_promote(self):
        sched = FluidScheduler(UniformRateModel(2.0), vector=True)
        for _ in range(6):
            sched.add(FluidOp(4.0, kind="cpu"), 0.0)
        sched.rerate(0.0)
        assert sched.vector_solves == 0


class TestRemainingWork:
    def test_tracks_array_backed_ops_mid_flight(self):
        sched = FluidScheduler(VectorCapacityModel(8.0), vector=True)
        ops = [FluidOp(8.0, kind="cpu") for _ in range(4)]
        for op in ops:
            sched.add(op, 0.0)
        sched.rerate(0.0)
        sched.settle(1.0)  # each op runs at 2.0 for 1s
        for op in ops:
            assert op._vg is not None
            assert remaining_work(op) == 6.0
        sched.rerate(1.0)
        t = sched.next_completion(1.0)
        sched.settle(t)
        done = sched.pop_completed(t)
        for op in done:
            assert op._vg is None
            assert remaining_work(op) == 0.0

    def test_matches_attribute_on_scalar_path(self):
        sched = FluidScheduler(ScalarCapacityModel(8.0), vector=True)
        op = FluidOp(8.0, kind="cpu")
        sched.add(op, 0.0)
        sched.rerate(0.0)
        sched.settle(0.5)
        assert remaining_work(op) == op.remaining == 4.0


class TestEnvSwitch:
    def test_env_disables_vector(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_VECTOR", "0")
        assert not vector_enabled()
        sched = FluidScheduler(VectorCapacityModel(4.0))
        assert not sched.vector
        for _ in range(8):
            sched.add(FluidOp(4.0, kind="cpu"), 0.0)
        sched.rerate(0.0)
        assert sched.vector_solves == 0
        # A disabled kernel also never counts fallbacks: the counter
        # reports vector-eligible work lost to opt-outs, not the switch.
        assert sched.scalar_fallbacks == 0

    @pytest.mark.parametrize("value", ["1", "on", "yes", "true"])
    def test_env_truthy_values_enable(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SIM_VECTOR", value)
        assert vector_enabled()


class TestObserverCodes:
    def test_codes_cached_on_op(self):
        op = FluidOp(4.0, kind="io", direction="read", pattern=None)
        assert op._obs is None
        code = observer_code(op)
        assert op._obs == code
        assert observer_code(FluidOp(1.0, kind="cpu")) != code
