"""Unit tests for simulated-thread synchronisation primitives."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, Sleep
from repro.sim.fluid import UniformRateModel
from repro.sim.primitives import Barrier, Semaphore, SimQueue


@pytest.fixture
def engine():
    return Engine(UniformRateModel(1.0))


class TestSemaphore:
    def test_acquire_available_does_not_block(self, engine):
        sem = Semaphore(engine, count=1)

        def proc():
            yield sem.acquire()
            return engine.now

        assert engine.run_process(proc()) == 0.0
        assert sem.value == 0

    def test_acquire_blocks_until_release(self, engine):
        sem = Semaphore(engine, count=0)
        log = []

        def waiter():
            yield sem.acquire()
            log.append(("acquired", engine.now))

        def releaser():
            yield Sleep(2.0)
            sem.release()

        engine.spawn(waiter())
        engine.spawn(releaser())
        engine.run()
        assert log == [("acquired", 2.0)]

    def test_waiters_served_fifo(self, engine):
        sem = Semaphore(engine, count=0)
        order = []

        def waiter(label):
            yield sem.acquire()
            order.append(label)

        def releaser():
            for _ in range(3):
                yield Sleep(1.0)
                sem.release()

        engine.spawn(waiter("first"))
        engine.spawn(waiter("second"))
        engine.spawn(waiter("third"))
        engine.spawn(releaser())
        engine.run()
        assert order == ["first", "second", "third"]

    def test_release_without_waiters_increments(self, engine):
        sem = Semaphore(engine, count=0)
        sem.release()
        assert sem.value == 1

    def test_negative_count_rejected(self, engine):
        with pytest.raises(ValueError):
            Semaphore(engine, count=-1)


class TestBarrier:
    def test_all_parties_released_together(self, engine):
        barrier = Barrier(engine, parties=3)
        released = []

        def worker(delay, label):
            yield Sleep(delay)
            yield barrier.wait()
            released.append((label, engine.now))

        engine.spawn(worker(1.0, "a"))
        engine.spawn(worker(2.0, "b"))
        engine.spawn(worker(3.0, "c"))
        engine.run()
        assert {t for _, t in released} == {3.0}
        assert {lbl for lbl, _ in released} == {"a", "b", "c"}

    def test_barrier_is_cyclic(self, engine):
        barrier = Barrier(engine, parties=2)
        laps = []

        def worker(label):
            for lap in range(3):
                yield Sleep(1.0)
                yield barrier.wait()
                laps.append((label, lap, engine.now))

        engine.spawn(worker("x"))
        engine.spawn(worker("y"))
        engine.run()
        assert barrier.generation == 3
        # Each lap completes at the same instant for both workers.
        for lap in range(3):
            times = {t for _lbl, g, t in laps if g == lap}
            assert len(times) == 1

    def test_single_party_barrier_never_blocks(self, engine):
        barrier = Barrier(engine, parties=1)

        def proc():
            yield barrier.wait()
            return "through"

        assert engine.run_process(proc()) == "through"

    def test_invalid_parties_rejected(self, engine):
        with pytest.raises(ValueError):
            Barrier(engine, parties=0)


class TestSimQueue:
    def test_put_get_roundtrip(self, engine):
        q = SimQueue(engine)

        def producer():
            yield q.put("item")

        def consumer():
            item = yield q.get()
            return item

        engine.spawn(producer())
        proc = engine.spawn(consumer())
        engine.run()
        assert proc.result == "item"

    def test_get_blocks_until_put(self, engine):
        q = SimQueue(engine)
        arrival = []

        def consumer():
            item = yield q.get()
            arrival.append((item, engine.now))

        def producer():
            yield Sleep(4.0)
            yield q.put("late")

        engine.spawn(consumer())
        engine.spawn(producer())
        engine.run()
        assert arrival == [("late", 4.0)]

    def test_bounded_put_blocks_when_full(self, engine):
        q = SimQueue(engine, maxsize=1)
        times = []

        def producer():
            yield q.put(1)
            times.append(("put1", engine.now))
            yield q.put(2)
            times.append(("put2", engine.now))

        def consumer():
            yield Sleep(5.0)
            yield q.get()
            yield q.get()

        engine.spawn(producer())
        engine.spawn(consumer())
        engine.run()
        assert times[0] == ("put1", 0.0)
        assert times[1] == ("put2", 5.0)

    def test_fifo_order(self, engine):
        q = SimQueue(engine)
        seen = []

        def producer():
            for i in range(5):
                yield q.put(i)

        def consumer():
            for _ in range(5):
                seen.append((yield q.get()))

        engine.spawn(producer())
        engine.spawn(consumer())
        engine.run()
        assert seen == [0, 1, 2, 3, 4]

    def test_try_get_empty_raises(self, engine):
        q = SimQueue(engine)
        with pytest.raises(SimulationError):
            q.try_get()

    def test_invalid_maxsize_rejected(self, engine):
        with pytest.raises(ValueError):
            SimQueue(engine, maxsize=0)
