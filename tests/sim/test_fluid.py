"""Unit and property tests for the fluid scheduler."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Engine, Join, Spawn
from repro.sim.fluid import FluidOp, FluidScheduler, UniformRateModel


class TestScheduler:
    def test_settle_debits_work(self):
        sched = FluidScheduler(UniformRateModel(2.0))
        op = FluidOp(10.0, kind="cpu")
        sched.add(op, now=0.0)
        sched.rerate(0.0)
        sched.settle(3.0)
        assert op.remaining == pytest.approx(4.0)

    def test_next_completion_uses_current_rates(self):
        sched = FluidScheduler(UniformRateModel(5.0))
        op = FluidOp(10.0, kind="cpu")
        sched.add(op, now=0.0)
        sched.rerate(0.0)
        assert sched.next_completion(0.0) == pytest.approx(2.0)

    def test_pop_completed_tolerates_float_residue(self):
        sched = FluidScheduler(UniformRateModel(3.0))
        op = FluidOp(1.0, kind="cpu")
        sched.add(op, now=0.0)
        sched.rerate(0.0)
        sched.settle(1.0 / 3.0)  # leaves ~1e-17 residue
        done = sched.pop_completed(1.0 / 3.0)
        assert done == [op]
        assert op.remaining == 0.0

    def test_time_going_backwards_raises(self):
        from repro.errors import SimulationError

        sched = FluidScheduler(UniformRateModel(1.0))
        sched.settle(5.0)
        with pytest.raises(SimulationError):
            sched.settle(4.0)

    def test_interval_observers_see_active_ops(self):
        sched = FluidScheduler(UniformRateModel(1.0))
        seen = []
        sched.interval_observers.append(lambda t0, t1, ops: seen.append((t0, t1, len(ops))))
        op = FluidOp(2.0, kind="cpu")
        sched.add(op, now=0.0)
        sched.rerate(0.0)
        sched.settle(2.0)
        assert seen == [(0.0, 2.0, 1)]


class TestWorkConservation:
    """Property: total simulated time equals work/rate for any op mix."""

    @settings(max_examples=30, deadline=None)
    @given(
        works=st.lists(
            st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=8
        ),
        rate=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_parallel_ops_finish_at_max_work_over_rate(self, works, rate):
        engine = Engine(UniformRateModel(rate))

        def worker(work):
            yield FluidOp(work, kind="cpu")

        def root():
            procs = []
            for work in works:
                procs.append((yield Spawn(worker(work))))
            yield Join(procs)

        engine.run_process(root())
        assert engine.now == pytest.approx(max(works) / rate, rel=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        works=st.lists(
            st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=8
        ),
        rate=st.floats(min_value=0.1, max_value=10.0),
    )
    def test_sequential_ops_finish_at_sum_work_over_rate(self, works, rate):
        engine = Engine(UniformRateModel(rate))

        def root():
            for work in works:
                yield FluidOp(work, kind="cpu")

        engine.run_process(root())
        assert engine.now == pytest.approx(sum(works) / rate, rel=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(
        durations=st.lists(
            st.floats(min_value=0.01, max_value=10.0), min_size=2, max_size=6
        )
    )
    def test_op_durations_are_recorded(self, durations):
        engine = Engine(UniformRateModel(1.0))
        ops = [FluidOp(d, kind="cpu") for d in durations]

        def root():
            for op in ops:
                yield op

        engine.run_process(root())
        for op, d in zip(ops, durations):
            assert op.duration == pytest.approx(d, rel=1e-6)
