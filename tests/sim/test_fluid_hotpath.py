"""Regression tests for the fluid-kernel hot-path overhaul.

Covers the behaviours the incremental re-rating / completion-heap
rewrite must preserve: absolute (not relative) epsilon completion for
very large ops, deterministic FIFO resume order for same-instant
completions, rate redistribution when a peer op drains, and group-local
re-rating for independent ops.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.fluid import FluidOp, FluidScheduler, RateModel, UniformRateModel

GB = 1_000_000_000


class SharedCapacityModel(RateModel):
    """Processor sharing: one capacity split evenly over active ops."""

    def __init__(self, capacity: float):
        self.capacity = capacity

    def assign(self, ops):
        ops = list(ops)
        share = self.capacity / len(ops)
        return {op: share for op in ops}


class GateModel(RateModel):
    """All ops progress at a settable rate (can be dropped to zero)."""

    def __init__(self, rate: float = 1.0):
        self.rate = rate

    def assign(self, ops):
        return {op: self.rate for op in ops}


class TestAbsoluteEpsilon:
    def test_multi_gb_op_not_completed_early(self):
        # 8 GB op at 1 GB/s.  Just before the true finish time ~4 real
        # bytes remain; a relative completion threshold (a fraction of
        # the op's original work) would have declared the op done here.
        sched = FluidScheduler(UniformRateModel(1e9))
        op = FluidOp(8 * GB, kind="io")
        sched.add(op, now=0.0)
        sched.rerate(0.0)
        t_early = (8 * GB - 4) / 1e9
        sched.settle(t_early)
        assert sched.pop_completed(t_early) == []
        assert op.remaining == pytest.approx(4.0, rel=1e-6)
        t_done = sched.next_completion(t_early)
        assert t_done == pytest.approx(8.0)
        sched.settle(t_done)
        assert sched.pop_completed(t_done) == [op]
        assert op.finished_at == pytest.approx(8.0)

    def test_engine_times_multi_gb_op_exactly(self):
        engine = Engine(UniformRateModel(1e9))

        def job():
            op = FluidOp(8 * GB, kind="io")
            yield op
            return op.finished_at

        finished_at = engine.run_process(job())
        assert finished_at == pytest.approx(8.0, rel=1e-12)

    def test_stalled_op_with_float_residue_completes(self):
        # An op whose rate drops to zero with only floating-point
        # residue left must be rescued by the absolute epsilon instead
        # of deadlocking the scheduler.
        model = GateModel(1.0)
        sched = FluidScheduler(model)
        op = FluidOp(1.0, kind="cpu")
        sched.add(op, now=0.0)
        sched.rerate(0.0)
        t = 1.0 - 1e-13
        sched.settle(t)
        assert 0 < op.remaining < 1e-12
        model.rate = 0.0
        # Dirty the shared group so the zero rate takes effect.
        other = FluidOp(5.0, kind="cpu")
        sched.add(other, now=t)
        sched.rerate(t)
        assert op in sched.pop_completed(t)


class TestCoalescedCompletions:
    def test_same_instant_completions_resume_fifo(self):
        # Three identical ops finish at the same simulated instant; the
        # coalesced completion batch must resume waiters in issue order.
        engine = Engine(UniformRateModel(2.0))
        order = []

        def worker(name):
            yield FluidOp(4.0, kind="cpu")
            order.append(name)

        for name in ("a", "b", "c"):
            engine.spawn(worker(name), name)
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == pytest.approx(2.0)

    def test_zero_work_op_never_enters_active_set(self):
        sched = FluidScheduler(UniformRateModel(1.0))
        op = FluidOp(0.0, kind="cpu")
        sched.add(op, now=1.5)
        assert op.finished_at == 1.5
        assert not sched.active
        assert sched.ops_added == 0


class TestRateRedistribution:
    def test_survivor_speeds_up_when_peer_drains(self):
        # Two ops share capacity 1.0 at 0.5 each.  When the first
        # drains at t=2, the survivor must be re-rated to the full
        # capacity and finish at t=3 (not t=4).
        engine = Engine(SharedCapacityModel(1.0))
        a = FluidOp(1.0, kind="cpu")
        b = FluidOp(2.0, kind="cpu")

        def worker(op):
            yield op

        engine.spawn(worker(a), "a")
        engine.spawn(worker(b), "b")
        engine.run()
        assert a.finished_at == pytest.approx(2.0)
        assert b.finished_at == pytest.approx(3.0)
        assert b.rate == pytest.approx(1.0)

    def test_independent_groups_rerate_locally(self):
        # UniformRateModel ops are independent (per-op resource groups):
        # adding a second op must not re-rate the first.
        sched = FluidScheduler(UniformRateModel(1.0))
        a = FluidOp(5.0, kind="cpu")
        b = FluidOp(5.0, kind="cpu")
        sched.add(a, now=0.0)
        sched.rerate(0.0)
        assert sched.ops_rerated == 1
        sched.add(b, now=0.0)
        sched.rerate(0.0)
        assert sched.ops_rerated == 2  # b only; a was left alone


class TestCheapOpCreation:
    def test_no_attrs_stays_none(self):
        op = FluidOp(1.0, kind="cpu")
        assert op.attrs is None

    def test_keyword_attrs_build_dict(self):
        op = FluidOp(1.0, kind="io", direction="read")
        assert op.attrs == {"direction": "read"}

    def test_explicit_dict_merges_with_keywords(self):
        op = FluidOp(1.0, kind="io", attrs={"direction": "read"}, threads=4)
        assert op.attrs == {"direction": "read", "threads": 4}
