"""Unit tests for process-tree cancellation (speculative loser teardown)."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine, Join, Now, Sleep, Spawn
from repro.sim.fluid import FluidOp, UniformRateModel


def make_engine(rate: float = 1.0) -> Engine:
    return Engine(UniformRateModel(rate))


class TestCancelTree:
    def test_cancelled_join_resumes_with_none(self):
        engine = make_engine()

        def worker():
            yield FluidOp(100.0, kind="cpu")
            return "never"

        def driver():
            proc = yield Spawn(worker())
            yield Sleep(1.0)
            engine.cancel_tree(proc)
            result = yield Join(proc)
            return (proc.cancelled, result)

        cancelled, result = engine.run_process(driver())
        assert cancelled is True
        assert result is None

    def test_children_are_cancelled_recursively(self):
        engine = make_engine()
        reached = []

        def leaf(label):
            yield FluidOp(100.0, kind="cpu")
            reached.append(label)

        def parent():
            yield Spawn(leaf("a"))
            yield Spawn(leaf("b"))
            yield FluidOp(100.0, kind="cpu")
            reached.append("parent")

        def driver():
            proc = yield Spawn(parent())
            yield Sleep(1.0)
            engine.cancel_tree(proc)
            yield Sleep(200.0)

        engine.run_process(driver())
        assert reached == []

    def test_cancel_counts_in_scheduler(self):
        engine = make_engine()

        def worker():
            yield FluidOp(100.0, kind="cpu")

        def driver():
            proc = yield Spawn(worker())
            yield Sleep(1.0)
            engine.cancel_tree(proc)

        engine.run_process(driver())
        assert engine.fluid.ops_cancelled == 1

    def test_cancel_settles_partial_progress_first(self):
        engine = make_engine(rate=2.0)
        intervals = []
        engine.fluid.interval_observers.append(
            lambda t0, t1, ops: intervals.append(
                sum(op.rate * (t1 - t0) for op in ops)
            )
        )

        def worker():
            yield FluidOp(100.0, kind="cpu")

        def driver():
            proc = yield Spawn(worker())
            yield Sleep(3.0)
            engine.cancel_tree(proc)

        engine.run_process(driver())
        # 3 seconds at rate 2.0 were physically done before the cancel
        # and must be charged, nothing more.
        assert sum(intervals) == pytest.approx(6.0)

    def test_cancelling_done_process_is_noop(self):
        engine = make_engine()

        def worker():
            yield Sleep(1.0)
            return 7

        def driver():
            proc = yield Spawn(worker())
            result = yield Join(proc)
            engine.cancel_tree(proc)
            return (result, proc.cancelled)

        result, cancelled = engine.run_process(driver())
        assert result == 7
        assert cancelled is False

    def test_survivors_speed_up_after_cancel(self):
        engine = make_engine(rate=1.0)

        def worker(work):
            yield FluidOp(work, kind="cpu")

        def driver():
            # Uniform model: each op gets rate 1.0 regardless of
            # population, so completion time == its own work; the point
            # here is that the survivor still completes after a sibling
            # cancel (no heap corruption, no lost wakeup).
            a = yield Spawn(worker(10.0))
            b = yield Spawn(worker(4.0))
            yield Sleep(1.0)
            engine.cancel_tree(a)
            yield Join(b)
            return (yield Now())

        assert engine.run_process(driver()) == pytest.approx(4.0)


class TestCancelHookEvents:
    """Cancellation is a *final* event: every observer attached to the
    engine must see the coroutine retire, or its bookkeeping leaks."""

    def _engine_with_sanitizer(self):
        from repro.analysis.sanitizer import SimSanitizer

        engine = make_engine()
        sanitizer = SimSanitizer(trace=True)
        sanitizer.attach_engine(engine)
        return engine, sanitizer

    def test_sanitizer_waits_entry_dropped_on_cancel(self):
        from repro.sim.primitives import Semaphore

        engine, sanitizer = self._engine_with_sanitizer()
        sem = Semaphore(engine, count=0, name="never")

        def stuck():
            yield sem.acquire()

        def driver():
            proc = yield Spawn(stuck(), name="stuck")
            yield Sleep(1.0)
            assert proc.pid in sanitizer.waits  # parked and tracked
            engine.cancel_tree(proc)
            assert proc.pid not in sanitizer.waits  # retired, not leaked

        engine.run_process(driver())
        assert sanitizer.waits == {}

    def test_sanitizer_trace_records_cancel(self):
        engine, sanitizer = self._engine_with_sanitizer()

        def worker():
            yield FluidOp(100.0, kind="cpu")

        def driver():
            proc = yield Spawn(worker(), name="victim")
            yield Sleep(1.0)
            engine.cancel_tree(proc)

        engine.run_process(driver())
        cancels = [e for e in sanitizer.trace if e[0] == "cancel"]
        assert [name for _, _, name in cancels] == ["victim"]

    def test_race_clock_retired_on_cancel(self):
        from repro.analysis.race import RaceDetector

        engine = make_engine()
        det = RaceDetector()
        det.attach_engine(engine)

        def worker():
            yield FluidOp(100.0, kind="cpu")

        def driver():
            proc = yield Spawn(worker(), name="victim")
            yield Sleep(1.0)
            assert proc.pid in det._clocks
            engine.cancel_tree(proc)
            assert proc.pid not in det._clocks
            assert proc.pid in det._final_clocks

        engine.run_process(driver())

    def test_cancel_blocked_on_primitive_with_both_observers(self):
        from repro.analysis.race import RaceDetector
        from repro.sim.primitives import SimQueue

        engine, sanitizer = self._engine_with_sanitizer()
        det = RaceDetector()
        det.attach_engine(engine)
        q = SimQueue(engine, name="empty")

        def getter():
            yield q.get()

        def driver():
            proc = yield Spawn(getter(), name="getter")
            yield Sleep(1.0)
            engine.cancel_tree(proc)
            yield Sleep(1.0)

        engine.run_process(driver())
        assert sanitizer.waits == {}
        assert det._clocks == {} or all(
            pid in det._final_clocks for pid in det._clocks
        )

    def test_join_after_cancel_merges_final_clock(self):
        # Join on a cancelled child must find its final clock (the
        # on_cancel path), not KeyError on a live-clock lookup.
        from repro.analysis.race import RaceDetector

        engine = make_engine()
        det = RaceDetector()
        det.attach_engine(engine)

        def worker():
            yield FluidOp(100.0, kind="cpu")

        def driver():
            proc = yield Spawn(worker(), name="victim")
            yield Sleep(1.0)
            engine.cancel_tree(proc)
            result = yield Join(proc)
            return result

        assert engine.run_process(driver()) is None
