"""Tests for the declarative system/experiment/profile registry."""

from __future__ import annotations

import pytest

from repro.core.base import ConcurrencyModel, SortConfig, SortSystem
from repro.errors import ConfigError, UnknownSystemError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.registry import (
    RegistryView,
    available,
    create_system,
    get_experiment,
    get_profile,
    get_system,
    register_system,
)


class TestLookup:
    def test_builtin_systems_present(self):
        names = available("system")
        assert set(names) >= {
            "wiscsort", "wiscsort-merge", "ems", "pmsort", "pmsort+",
            "sample-sort", "modified-key-sort",
        }

    def test_builtin_profiles_present(self):
        assert set(available("profile")) >= {
            "pmem", "dram", "block-ssd", "bd-device", "brd-device",
            "bard-device",
        }

    def test_builtin_experiments_present(self):
        assert set(available("experiment")) >= {
            "fig01", "tab01", "fig11", "ablation-write-pool",
            "cluster-scaleout",
        }

    def test_unknown_system_lists_choices(self):
        with pytest.raises(UnknownSystemError) as exc:
            get_system("bogosort")
        assert exc.value.name == "bogosort"
        assert "wiscsort" in exc.value.choices
        assert "choices" in str(exc.value)

    def test_unknown_profile_and_experiment(self):
        with pytest.raises(UnknownSystemError):
            get_profile("tape-drive")
        with pytest.raises(UnknownSystemError):
            get_experiment("fig99")

    def test_unknown_system_is_a_config_error(self):
        # Callers that guarded with ConfigError keep working.
        with pytest.raises(ConfigError):
            get_system("bogosort")

    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigError):
            available("dessert")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigError):
            register_system("wiscsort")(object())

    def test_reregistering_same_object_is_idempotent(self):
        obj = get_system("wiscsort")
        assert register_system("wiscsort")(obj) is obj


class TestRegistryView:
    def test_mapping_surface(self):
        view = RegistryView("system")
        assert "wiscsort" in view
        assert "bogosort" not in view
        assert len(view) == len(available("system"))
        assert set(view) == set(available("system"))
        assert view["ems"] is get_system("ems")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            RegistryView("dessert")


class TestRoundTrip:
    """Every registered system sorts 1k records and validates."""

    @pytest.mark.parametrize("name", available("system"))
    def test_create_and_sort(self, name, pmem):
        fmt = RecordFormat()
        config = SortConfig()
        if name == "pmsort+":
            # PMSort+ is the paper's IO-overlap variant; it refuses the
            # default no-io-overlap concurrency model by design.
            config = SortConfig(concurrency=ConcurrencyModel.IO_OVERLAP)
        system = create_system(name, fmt, config=config)
        machine = Machine(profile=pmem)
        data = generate_dataset(machine, "input", 1_000, fmt, seed=7)
        result = system.run(machine, data)
        assert result.validated
        assert result.total_time > 0

    @pytest.mark.parametrize("name", available("system"))
    def test_uniform_constructor_keeps_config(self, name):
        fmt = RecordFormat()
        config = SortConfig(concurrency=ConcurrencyModel.IO_OVERLAP)
        system = create_system(name, fmt, config=config)
        assert isinstance(system, SortSystem)
        assert system.fmt is fmt
        assert system.config is config


class TestPolicies:
    def test_builtin_policies_present(self):
        assert set(available("policy")) >= {
            "fifo", "fair", "edf", "backpressure", "shed",
        }

    def test_unknown_policy_lists_choices(self):
        from repro.registry import get_policy

        with pytest.raises(UnknownSystemError) as exc:
            get_policy("round-robin")
        assert exc.value.name == "round-robin"
        assert exc.value.kind == "policy"
        assert "fifo" in exc.value.choices

    def test_create_policy_instantiates(self):
        from repro.cluster.policies import AdmissionPolicy
        from repro.registry import create_policy

        for name in available("policy"):
            policy = create_policy(name)
            assert isinstance(policy, AdmissionPolicy)
            assert policy.name == name

    def test_policy_view_backs_the_cli_choices(self):
        view = RegistryView("policy")
        assert "edf" in view
        assert len(view) == len(available("policy"))


class TestRemovedShims:
    def test_sample_sort_positional_cost_model_rejected(self):
        # The pre-2.0 shim that silently rerouted SampleSort(fmt, cost)
        # is gone: a non-SortConfig second argument is now a hard error.
        from repro.baselines.sample_sort import SampleSort, SampleSortCostModel

        cost = SampleSortCostModel(write_passes=2.0)
        with pytest.raises(ConfigError, match="cost="):
            SampleSort(RecordFormat(), cost)

    def test_sample_sort_cost_keyword_works(self):
        from repro.baselines.sample_sort import SampleSort, SampleSortCostModel

        cost = SampleSortCostModel(write_passes=2.0)
        system = SampleSort(RecordFormat(), cost=cost)
        assert system.cost is cost
        assert isinstance(system.config, SortConfig)
