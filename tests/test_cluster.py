"""Tests for the scale-out cluster: sharding, shuffle, byte-identity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import (
    Cluster,
    ShardedWiscSort,
    generate_cluster_dataset,
)
from repro.core.wiscsort import WiscSort
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset


def _single_device_reference(pmem, n, fmt, seed):
    machine = Machine(profile=pmem)
    data = generate_dataset(machine, "input", n, fmt, seed=seed)
    result = WiscSort(fmt).run(machine, data)
    return machine.fs.open(result.output_name).peek(), result


class TestClusterConstruction:
    def test_homogeneous_default(self):
        cluster = Cluster(shards=3)
        assert len(cluster.shards) == 3
        domains = [shard.domain for shard in cluster.shards]
        assert domains == ["shard0", "shard1", "shard2"]
        # one shared engine and DRAM pool across shards
        assert all(s.engine is cluster.engine for s in cluster.shards)
        assert all(s.dram is cluster.dram for s in cluster.shards)

    def test_heterogeneous_profiles_by_name(self):
        cluster = Cluster(profiles=["pmem", "bd-device"])
        assert len(cluster.shards) == 2
        assert "bd-device" in cluster.shards[1].profile.describe()

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ConfigError):
            Cluster(shards=0)

    def test_dataset_split_covers_input(self, pmem):
        fmt = RecordFormat()
        cluster = Cluster(shards=3, profile=pmem)
        sharded = generate_cluster_dataset(cluster, "in", 1_000, fmt, seed=5)
        assert sharded.size == fmt.file_bytes(1_000)
        machine = Machine(profile=pmem)
        data = generate_dataset(machine, "in", 1_000, fmt, seed=5)
        assert np.array_equal(sharded.merged(), data.peek())


class TestByteIdentity:
    """The tentpole invariant: sharded output == single-device output."""

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_sharded_equals_single(self, n_shards, pmem):
        fmt = RecordFormat()
        n, seed = 4_000, 42
        reference, single = _single_device_reference(pmem, n, fmt, seed)

        cluster = Cluster(shards=n_shards, profile=pmem)
        sharded_input = generate_cluster_dataset(cluster, "input", n, fmt,
                                                 seed=seed)
        system = ShardedWiscSort(fmt)
        result = system.run(cluster, sharded_input)
        assert result.validated
        merged = np.concatenate([
            part.peek()
            for part in result_output_parts(cluster, system, n_shards)
            if part.size
        ])
        assert np.array_equal(merged, reference)

    def test_uneven_split_three_shards(self, pmem):
        # 1000 records across 3 shards: 333/333/334 -- bounds round
        fmt = RecordFormat()
        reference, _ = _single_device_reference(pmem, 1_000, fmt, 7)
        cluster = Cluster(shards=3, profile=pmem)
        sharded_input = generate_cluster_dataset(cluster, "input", 1_000,
                                                 fmt, seed=7)
        system = ShardedWiscSort(fmt)
        result = system.run(cluster, sharded_input)
        assert result.validated
        merged = np.concatenate([
            part.peek()
            for part in result_output_parts(cluster, system, 3)
            if part.size
        ])
        assert np.array_equal(merged, reference)

    def test_shard_stats_record_traffic(self, pmem):
        fmt = RecordFormat()
        cluster = Cluster(shards=2, profile=pmem)
        sharded_input = generate_cluster_dataset(cluster, "input", 2_000,
                                                 fmt, seed=1)
        ShardedWiscSort(fmt).run(cluster, sharded_input)
        for shard in cluster.shards:
            assert shard.stats.bytes_read_internal > 0
            assert shard.stats.bytes_written_internal > 0
        # the merged ClusterStats view aggregates both shards
        assert cluster.stats.bytes_read_internal == sum(
            s.stats.bytes_read_internal for s in cluster.shards
        )
        tags = dict(cluster.stats.tags)
        assert any("SHUFFLE" in tag for tag in tags)


def result_output_parts(cluster, system, n_shards):
    return [
        cluster.shards[d].fs.open(f"{system.output_name}.shard{d}")
        for d in range(n_shards)
    ]


class TestClusterDeterminism:
    def test_sharded_sort_trace_identical(self, pmem):
        from repro.analysis.sanitizer import verify_determinism

        fmt = RecordFormat()

        def run(sanitizer):
            cluster = Cluster(shards=4, profile=pmem)
            sanitizer.install_cluster(cluster)
            sharded_input = generate_cluster_dataset(
                cluster, "input", 2_000, fmt, seed=42
            )
            ShardedWiscSort(fmt).run(cluster, sharded_input)

        report = verify_determinism(run, runs=2)
        assert report.ok, report.render()

    def test_sanitizer_zero_drift_across_shards(self, pmem):
        cluster = Cluster(shards=2, profile=pmem)
        sanitizer = cluster.install_sanitizer()
        fmt = RecordFormat()
        sharded_input = generate_cluster_dataset(cluster, "input", 2_000,
                                                 fmt, seed=3)
        ShardedWiscSort(fmt).run(cluster, sharded_input)
        sanitizer.check()  # raises ChargeDriftError on drift
