"""Tests for reporting helpers and I/O-efficiency accounting."""

from __future__ import annotations

import pytest

from repro.device.profile import Pattern
from repro.machine import Machine
from repro.metrics.efficiency import io_efficiency_rows
from repro.metrics.report import BenchTable, format_table, speedup


class TestFormatTable:
    def test_alignment_and_separator(self):
        text = format_table(["a", "long-header"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}
        assert len(lines) == 4

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        with pytest.raises(ValueError):
            speedup(1.0, 0.0)

    def test_speedup_rejects_nonpositive_baseline(self):
        # A zero/negative baseline used to return nonsense (0.0 or a
        # negative "speedup") instead of raising.
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            speedup(-3.0, 1.0)


class TestBenchTable:
    def test_render_contains_rows_and_notes(self):
        table = BenchTable(title="T", headers=["x", "y"])
        table.add_row(1, "a")
        table.add_note("hello")
        text = table.render()
        assert "== T ==" in text
        assert "hello" in text

    def test_column_extraction(self):
        table = BenchTable(title="T", headers=["x", "y"])
        table.add_row(1, "a")
        table.add_row(2, "b")
        assert table.column("y") == ["a", "b"]
        with pytest.raises(ValueError):
            table.column("z")


class TestIoEfficiency:
    def test_solo_ops_are_fully_efficient(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.io("read", Pattern.SEQ, 1 << 24, tag="r", threads=16)
            yield machine.io("write", Pattern.SEQ, 1 << 24, tag="w", threads=5)

        machine.run(job())
        rows = {tag: eff for tag, _, _, eff in io_efficiency_rows(machine)}
        assert rows["r"] == pytest.approx(1.0, abs=0.01)
        assert rows["w"] == pytest.approx(1.0, abs=0.01)

    def test_undersized_pool_shows_inefficiency(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            # 2 threads cannot reach the 16-thread sequential peak.
            yield machine.io("read", Pattern.SEQ, 1 << 24, tag="r", threads=2)

        machine.run(job())
        rows = {tag: eff for tag, _, _, eff in io_efficiency_rows(machine)}
        assert rows["r"] < 0.5

    def test_compute_tags_excluded(self, pmem):
        machine = Machine(profile=pmem)

        def job():
            yield machine.compute(0.001, tag="cpu-only", cores=1)

        machine.run(job())
        assert io_efficiency_rows(machine) == []
