"""Tests for the fault-plan model and the ``--faults`` spec parser."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.faults import FaultEvent, FaultPlan, parse_fault_spec


class TestFaultEvent:
    def test_exactly_one_trigger_required(self):
        with pytest.raises(ConfigError):
            FaultEvent("crash")
        with pytest.raises(ConfigError):
            FaultEvent("crash", at_op=5, at_time=0.1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultEvent("gremlins", at_op=1)

    def test_direction_follows_kind(self):
        assert FaultEvent("readerr", at_op=1).direction == "read"
        assert FaultEvent("torn", at_op=1).direction == "write"
        assert FaultEvent("crash", at_op=1).direction is None

    def test_probability_range_checked(self):
        with pytest.raises(ConfigError):
            FaultEvent("transient", p=1.5)

    def test_slow_needs_time_trigger(self):
        with pytest.raises(ConfigError):
            FaultEvent("slow", at_op=3)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.empty
        assert not plan.needs_probe
        assert not plan.has_crash

    def test_resolve_fractions(self):
        plan = FaultPlan(events=[FaultEvent("crash", at_frac=0.5)])
        assert plan.needs_probe
        resolved = plan.resolve_fractions(100)
        assert not resolved.needs_probe
        assert resolved.events[0].at_op == 50
        # the original is untouched
        assert plan.events[0].at_frac == 0.5

    def test_resolve_fractions_clamps_to_last_op(self):
        plan = FaultPlan(events=[FaultEvent("crash", at_frac=1.0)])
        assert plan.resolve_fractions(10).events[0].at_op == 9

    def test_non_event_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(events=["crash@op:5"])


class TestParseFaultSpec:
    def test_crash_at_op(self):
        plan = parse_fault_spec("crash@op:1234")
        assert plan.events[0].kind == "crash"
        assert plan.events[0].at_op == 1234

    def test_crash_at_time(self):
        plan = parse_fault_spec("crash@t:0.005")
        assert plan.events[0].at_time == pytest.approx(0.005)

    def test_crash_at_fraction(self):
        plan = parse_fault_spec("crash@50%")
        assert plan.events[0].at_frac == pytest.approx(0.5)
        assert plan.needs_probe

    def test_probabilistic(self):
        plan = parse_fault_spec("readerr@p:0.001")
        assert plan.events[0].p == pytest.approx(0.001)

    def test_enospc_burst(self):
        plan = parse_fault_spec("enospc@op:10+4")
        ev = plan.events[0]
        assert ev.at_op == 10 and ev.count == 4

    def test_slow_window(self):
        plan = parse_fault_spec("slow@t:0.002+0.01:x0.25")
        ev = plan.events[0]
        assert ev.at_time == pytest.approx(0.002)
        assert ev.duration == pytest.approx(0.01)
        assert ev.factor == pytest.approx(0.25)

    def test_seed_token_and_combination(self):
        plan = parse_fault_spec("crash@op:5, transient@p:0.01, seed:7")
        assert plan.seed == 7
        assert len(plan.events) == 2
        assert plan.has_crash

    def test_default_seed_passthrough(self):
        assert parse_fault_spec("crash@op:5", seed=42).seed == 42

    @pytest.mark.parametrize(
        "bad",
        [
            "crash",
            "crash@",
            "crash@op:x",
            "crash@banana:3",
            "slow@t:0.1",
            "slow@t:0.1+0.2",
            "bogus@op:3",
        ],
    )
    def test_bad_tokens_rejected(self, bad):
        with pytest.raises(ConfigError):
            parse_fault_spec(bad)

    @pytest.mark.parametrize(
        "bad",
        [
            "slow@t:0.1+0:x0.5",      # zero duration
            "slow@t:0.1+-0.2:x0.5",   # negative duration
            "slow@t:0.1+0.2:x0",      # zero factor
            "slow@t:0.1+0.2:x-2",     # negative factor
        ],
    )
    def test_slow_window_validation(self, bad):
        with pytest.raises(ConfigError):
            parse_fault_spec(bad)


class TestShardTargeting:
    """``shardN:`` prefixes scope events to one cluster shard."""

    def test_prefix_parsed(self):
        plan = parse_fault_spec("shard1:crash@op:5")
        assert plan.events[0].shard == "shard1"
        assert plan.events[0].at_op == 5

    def test_untargeted_applies_to_all_shards(self):
        plan = parse_fault_spec("crash@op:5")
        for domain in ("shard0", "shard7"):
            sub = plan.for_shard(domain)
            assert len(sub.events) == 1
            assert sub.events[0].shard is None

    def test_for_shard_filters_targeted_events(self):
        plan = parse_fault_spec(
            "shard0:crash@op:5, shard1:slow@t:0.1+0.2:x0.5, transient@p:0.01"
        )
        sub0 = plan.for_shard("shard0")
        assert [ev.kind for ev in sub0.events] == ["crash", "transient"]
        sub1 = plan.for_shard("shard1")
        assert [ev.kind for ev in sub1.events] == ["slow", "transient"]
        sub2 = plan.for_shard("shard2")
        assert [ev.kind for ev in sub2.events] == ["transient"]

    def test_for_shard_preserves_seed_and_retry(self):
        plan = parse_fault_spec("shard0:crash@op:5, seed:9")
        sub = plan.for_shard("shard0")
        assert sub.seed == 9
        assert sub.retry == plan.retry

    def test_mixed_targets_round_trip(self):
        plan = parse_fault_spec("shard2:crash@50%")
        assert plan.needs_probe
        ev = plan.for_shard("shard2").events[0]
        assert ev.shard == "shard2" and ev.at_frac == pytest.approx(0.5)
