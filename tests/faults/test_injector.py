"""Injector behaviour: retries, backoff, tears, windows, zero overhead."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.base import SortConfig
from repro.core.wiscsort import WiscSort
from repro.errors import (
    MediaReadError,
    OutOfSpaceError,
    RetryExhaustedError,
    TransientDeviceError,
)
from repro.faults import FaultEvent, FaultPlan, RetryPolicy, parse_fault_spec
from repro.faults.injector import FaultInjector
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.units import KiB


def sort_under(plan, n=40_000, seed=3, merge=False):
    """Run a small WiscSort under ``plan``; returns (machine, result).

    The default OnePass workload issues exactly 3 timed file ops (key
    read, record gather, run write); ``merge=True`` switches to a
    many-run MergePass with hundreds of ops for probabilistic plans.
    """
    machine = Machine()
    if plan is not None:
        machine.install_faults(plan)
    data = generate_dataset(machine, "input", n, seed=seed)
    if merge:
        system = WiscSort(
            RecordFormat(),
            SortConfig(read_buffer=8 * KiB, write_buffer=8 * KiB),
            output_name="out",
            force_merge_pass=True,
            merge_chunk_entries=2_000,
        )
    else:
        system = WiscSort(RecordFormat(), SortConfig(), output_name="out")
    result = system.run(machine, data)
    return machine, result


class TestArming:
    def test_empty_plan_is_unarmed(self):
        inj = FaultInjector(FaultPlan())
        assert not inj.armed

    def test_count_only_is_armed(self):
        inj = FaultInjector(FaultPlan(), count_only=True)
        assert inj.armed

    def test_unresolved_fractions_rejected(self):
        plan = FaultPlan(events=[FaultEvent("crash", at_frac=0.5)])
        with pytest.raises(ValueError):
            FaultInjector(plan)

    def test_empty_injector_leaves_results_identical(self):
        m0, r0 = sort_under(None)
        m1, r1 = sort_under(FaultPlan())
        assert r1.total_time == r0.total_time
        out0 = bytes(bytearray(m0.fs.open("out").peek()))
        out1 = bytes(bytearray(m1.fs.open("out").peek()))
        assert out0 == out1
        # the empty injector never even counted ops (fast path)
        assert m1.faults.stats.ops_seen == 0

    def test_count_only_counts_every_timed_op(self):
        machine = Machine()
        inj = machine.install_faults(FaultPlan(), count_only=True)
        data = generate_dataset(machine, "input", 40_000, seed=3)
        WiscSort(RecordFormat(), SortConfig(), output_name="out").run(
            machine, data
        )
        assert inj.op_index > 0
        assert inj.stats.ops_seen == inj.op_index
        assert inj.stats.faults_injected == 0


class TestRetries:
    def test_transient_fault_is_retried_and_charged(self):
        plan = parse_fault_spec("transient@op:2", seed=1)
        machine, result = sort_under(plan)
        stats = machine.faults.stats
        assert stats.faults_injected == 1
        assert stats.by_kind == {"TransientDeviceError": 1}
        assert stats.retries == 1
        assert stats.backoff_seconds > 0
        # the retried attempt shows up in total simulated time vs clean run
        _m0, clean = sort_under(None)
        assert result.total_time > clean.total_time

    def test_retry_exhaustion_escalates(self):
        # every attempt of every op fails transiently -> budget exhausted
        plan = FaultPlan(
            events=[FaultEvent("transient", p=1.0)],
            retry=RetryPolicy(max_attempts=3),
        )
        with pytest.raises(RetryExhaustedError) as exc_info:
            sort_under(plan)
        assert exc_info.value.attempts == 3
        assert isinstance(exc_info.value.last_fault, TransientDeviceError)

    def test_media_read_error_escalates_immediately(self):
        plan = parse_fault_spec("readerr@op:1", seed=1)
        with pytest.raises(MediaReadError):
            sort_under(plan)

    def test_enospc_burst_is_survived_by_retries(self):
        # window [2, 4): the op-2 write fails twice (virtual indices 2,
        # 3), then the third attempt escapes the burst and succeeds
        plan = parse_fault_spec("enospc@op:2+2", seed=1)
        machine, _result = sort_under(plan)
        stats = machine.faults.stats
        assert stats.by_kind.get("OutOfSpaceError", 0) >= 1
        assert stats.retries >= 1

    def test_torn_write_is_retried_to_full_durability(self):
        plan = parse_fault_spec("torn@op:2", seed=1)
        machine, result = sort_under(plan)
        stats = machine.faults.stats
        assert stats.torn_writes == 1
        assert stats.torn_bytes_discarded > 0
        assert result.validated

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(base_delay=1e-3, multiplier=2.0, jitter=0.0)

        class _NoJitter:
            def random(self):
                return 0.0

        rng = _NoJitter()
        assert policy.delay(1, rng) == pytest.approx(1e-3)
        assert policy.delay(2, rng) == pytest.approx(2e-3)
        assert policy.delay(3, rng) == pytest.approx(4e-3)


class TestSlowWindow:
    def test_degradation_slows_but_preserves_output(self):
        plan = parse_fault_spec("slow@t:0.0005+0.01:x0.25", seed=1)
        m1, slow = sort_under(plan)
        m0, clean = sort_under(None)
        assert m1.faults.stats.slow_windows == 1
        assert slow.total_time > clean.total_time
        assert bytes(bytearray(m1.fs.open("out").peek())) == bytes(
            bytearray(m0.fs.open("out").peek())
        )

    def test_degrade_resets_after_window(self):
        # window [0.0005, 0.0007] ends well before the sort does
        plan = parse_fault_spec("slow@t:0.0005+0.0002:x0.1", seed=1)
        machine, _result = sort_under(plan, merge=True)
        assert machine.faults.stats.slow_windows == 1
        assert machine.rate_model.degrade == 1.0


class TestDeterminism:
    def test_same_seed_same_schedule_and_stats(self):
        def one(seed):
            plan = FaultPlan(
                events=[
                    FaultEvent("transient", p=0.02),
                    FaultEvent("torn", p=0.01),
                ],
                seed=seed,
            )
            machine, result = sort_under(plan, merge=True)
            out = bytes(bytearray(machine.fs.open("out").peek()))
            return machine.faults.stats.as_dict(), result.total_time, out

        a = one(77)
        b = one(77)
        c = one(78)
        assert a == b
        # a different seed yields a different schedule (overwhelmingly)
        assert a[0] != c[0] or a[1] != c[1]
