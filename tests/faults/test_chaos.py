"""Chaos suite: seeded crash anywhere -> recovery is byte-identical.

The property under test (ISSUE 2 acceptance criterion): for any seeded
FaultPlan crashing at a random op index, crash-and-recover produces
output byte-identical to the fault-free run, without redoing completed
runs, and the whole schedule is reproducible from the seed.

``CHAOS_SEED`` parametrises the random crash points so CI can sweep
several fixed seeds (see .github/workflows/ci.yml); locally it defaults
to 101::

    CHAOS_SEED=202 PYTHONPATH=src python -m pytest tests/faults/test_chaos.py
"""

from __future__ import annotations

import os
import random

import pytest

from repro.baselines.external_merge_sort import ExternalMergeSort
from repro.core.base import SortConfig
from repro.core.wiscsort import WiscSort
from repro.errors import ConfigError, RecoveryError
from repro.faults import FaultPlan, FaultEvent, parse_fault_spec, run_with_faults
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.units import KiB

CHAOS_SEED = int(os.environ.get("CHAOS_SEED", "101"))
FMT = RecordFormat()
N_RECORDS = 60_000
DATA_SEED = 11

#: (name, factory(checkpoint), output file) for every resumable system
#: configuration; small buffers force merge passes (the "mergepass"
#: variants include intermediate merge rounds).
CONFIGS = [
    (
        "wiscsort-onepass",
        lambda ck: WiscSort(
            FMT, SortConfig(), output_name="out", checkpoint=ck
        ),
        "out",
    ),
    (
        "wiscsort-mergepass",
        lambda ck: WiscSort(
            FMT,
            SortConfig(read_buffer=8 * KiB, write_buffer=8 * KiB),
            output_name="out",
            checkpoint=ck,
            force_merge_pass=True,
            merge_chunk_entries=1_000,
        ),
        "out",
    ),
    (
        "ems",
        lambda ck: ExternalMergeSort(
            FMT,
            SortConfig(read_buffer=32 * KiB, write_buffer=32 * KiB),
            output_name="out",
            checkpoint=ck,
        ),
        "out",
    ),
]


def fresh_machine():
    machine = Machine()
    data = generate_dataset(machine, "input", N_RECORDS, seed=DATA_SEED)
    return machine, data


def run_clean(factory, out_name):
    machine, data = fresh_machine()
    factory(False).run(machine, data)
    return bytes(bytearray(machine.fs.open(out_name).peek()))


def probe_total_ops(factory):
    machine, data = fresh_machine()
    injector = machine.install_faults(FaultPlan(), count_only=True)
    factory(True).run(machine, data, validate=False)
    return injector.op_index


class TestCrashRecoveryProperty:
    """Crash at CHAOS_SEED-chosen random op indices, expect identity."""

    @pytest.mark.parametrize(
        "name,factory,out_name", CONFIGS, ids=[c[0] for c in CONFIGS]
    )
    def test_random_crash_points_recover_byte_identical(
        self, name, factory, out_name
    ):
        reference = run_clean(factory, out_name)
        total = probe_total_ops(factory)
        rng = random.Random(CHAOS_SEED)
        crash_ops = sorted({rng.randrange(total) for _ in range(5)})
        for at_op in crash_ops:
            machine, data = fresh_machine()
            plan = parse_fault_spec(f"crash@op:{at_op}", seed=CHAOS_SEED)
            result, report = run_with_faults(
                factory(True), machine, data, plan=plan
            )
            assert report.crashes == 1, f"{name} crash@op:{at_op} never fired"
            assert report.recoveries == 1
            out = bytes(bytearray(machine.fs.open(out_name).peek()))
            assert out == reference, f"{name} crash@op:{at_op} diverged"
            assert result.validated

    def test_multi_crash_single_workload(self):
        """Several crash points in one plan: recovery survives them all."""
        name, factory, out_name = CONFIGS[1]
        reference = run_clean(factory, out_name)
        total = probe_total_ops(factory)
        rng = random.Random(CHAOS_SEED + 1)
        events = [
            FaultEvent("crash", at_op=op)
            for op in sorted(rng.randrange(total) for _ in range(3))
        ]
        machine, data = fresh_machine()
        plan = FaultPlan(events=events, seed=CHAOS_SEED)
        _result, report = run_with_faults(factory(True), machine, data, plan=plan)
        assert report.crashes == report.recoveries
        assert bytes(bytearray(machine.fs.open(out_name).peek())) == reference

    def test_timed_crash_recovers(self):
        name, factory, out_name = CONFIGS[2]
        reference = run_clean(factory, out_name)
        machine, data = fresh_machine()
        plan = parse_fault_spec("crash@t:0.002", seed=CHAOS_SEED)
        _result, report = run_with_faults(factory(True), machine, data, plan=plan)
        assert report.crashes == 1
        assert bytes(bytearray(machine.fs.open(out_name).peek())) == reference


class TestNoRedundantWork:
    """Recovery resumes from the manifest instead of redoing everything."""

    def test_completed_runs_are_salvaged_not_redone(self):
        _name, factory, out_name = CONFIGS[1]
        total = probe_total_ops(factory)
        # crash late (during the merge phase): every run is complete
        machine, data = fresh_machine()
        plan = parse_fault_spec(f"crash@op:{int(total * 0.9)}", seed=1)
        result, _report = run_with_faults(factory(True), machine, data, plan=plan)
        assert result.extras["redone_runs"] == 0
        assert result.extras["salvaged_runs"] > 0
        assert result.extras["salvaged_bytes"] > 0

    def test_mid_run_phase_crash_salvages_prefix(self):
        _name, factory, _out_name = CONFIGS[1]
        # WiscSort mergepass writes 60 runs; crash roughly mid run phase
        machine, data = fresh_machine()
        plan = parse_fault_spec("crash@op:40", seed=1)
        result, report = run_with_faults(factory(True), machine, data, plan=plan)
        assert report.crashes == 1
        # completed runs before the crash were salvaged, the torn one redone
        assert result.extras["salvaged_runs"] > 0
        assert result.extras["redone_runs"] >= 1
        assert result.extras["salvaged_runs"] + result.extras["redone_runs"] <= 60


class TestScheduleDeterminism:
    """Same seed => same crash schedule, stats and final simulated state."""

    def test_same_seed_reproduces_everything(self):
        _name, factory, out_name = CONFIGS[1]
        total = probe_total_ops(factory)

        def one():
            machine, data = fresh_machine()
            plan = FaultPlan(
                events=[
                    FaultEvent("crash", at_op=int(total * 0.4)),
                    FaultEvent("torn", p=0.005),
                    FaultEvent("transient", p=0.005),
                ],
                seed=CHAOS_SEED,
            )
            result, report = run_with_faults(factory(True), machine, data, plan=plan)
            return (
                report.crash_points,
                report.stats,
                result.total_time,
                bytes(bytearray(machine.fs.open(out_name).peek())),
            )

        first = one()
        second = one()
        assert first == second


class TestRecoveryGuards:
    def test_recover_without_checkpoint_refuses(self):
        machine, data = fresh_machine()
        system = WiscSort(FMT, SortConfig(), output_name="out")
        with pytest.raises(RecoveryError):
            system.recover(machine, data)

    def test_checkpoint_requires_no_io_overlap(self):
        from repro.core.base import ConcurrencyModel

        machine, data = fresh_machine()
        system = WiscSort(
            FMT,
            SortConfig(concurrency=ConcurrencyModel.IO_OVERLAP),
            output_name="out",
            checkpoint=True,
        )
        with pytest.raises(ConfigError):
            system.run(machine, data)

    def test_crash_loop_bounded(self):
        """A plan whose crashes outpace progress raises RecoveryError."""
        _name, factory, _out = CONFIGS[0]
        total = probe_total_ops(factory)
        at = max(0, total - 2)
        # 4 crashes re-armed at nearly-the-end op indices, but only
        # max_recoveries=2 attempts allowed
        events = [FaultEvent("crash", at_op=at + i) for i in range(4)]
        machine, data = fresh_machine()
        machine.install_faults(FaultPlan(events=events, seed=1))
        with pytest.raises(RecoveryError):
            run_with_faults(
                factory(True), machine, data, max_recoveries=2
            )
