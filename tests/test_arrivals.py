"""Tests for the seeded open-loop arrival processes.

The load-bearing property is byte-determinism: the same seed must yield
the byte-identical :class:`JobSpec` stream -- that is what makes the
service reports and the CI percentile gates reproducible.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workloads.arrivals import (
    BurstyArrivals,
    JobSpec,
    PoissonArrivals,
    TraceArrivals,
    stream_fingerprint,
)


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ConfigError):
            JobSpec(0, 0.0, "j", "t", "wiscsort", records=0, seed=1)
        with pytest.raises(ConfigError):
            JobSpec(0, -1.0, "j", "t", "wiscsort", records=10, seed=1)
        with pytest.raises(ConfigError):
            JobSpec(0, 0.0, "j", "t", "wiscsort", records=10, seed=1,
                    deadline=0.0)

    def test_as_line_round_trips_floats_exactly(self):
        spec = JobSpec(3, 0.1234567890123456, "job00003", "tenant1",
                       "wiscsort", 5_000, 45, deadline=0.25)
        line = spec.as_line()
        # repr() serialization: the float survives the round trip exactly.
        assert repr(spec.arrival_time) in line
        assert line.startswith("3 ")


class TestPoisson:
    def test_same_seed_byte_identical(self):
        a = PoissonArrivals(500.0, seed=7).take(200)
        b = PoissonArrivals(500.0, seed=7).take(200)
        assert stream_fingerprint(a) == stream_fingerprint(b)
        assert a == b  # frozen dataclasses compare by value

    def test_different_seeds_differ(self):
        a = PoissonArrivals(500.0, seed=7).take(50)
        b = PoissonArrivals(500.0, seed=8).take(50)
        assert stream_fingerprint(a) != stream_fingerprint(b)

    def test_arrival_times_strictly_increase(self):
        specs = PoissonArrivals(1000.0, seed=1).take(100)
        times = [s.arrival_time for s in specs]
        assert all(t1 > t0 for t0, t1 in zip(times, times[1:]))

    def test_job_mix_round_robins_tenants_and_systems(self):
        specs = PoissonArrivals(
            100.0, seed=0, tenants=3, systems=("wiscsort", "wiscsort-merge")
        ).take(6)
        assert [s.tenant for s in specs] == [
            "tenant0", "tenant1", "tenant2", "tenant0", "tenant1", "tenant2",
        ]
        assert [s.system for s in specs] == [
            "wiscsort", "wiscsort-merge"] * 3
        # per-job dataset seeds are distinct and derived from the base seed
        assert [s.seed for s in specs] == [0, 1, 2, 3, 4, 5]

    def test_size_mix_draws_from_the_mix(self):
        specs = PoissonArrivals(
            100.0, seed=3, size_mix=[(1_000, 0.5), (8_000, 0.5)]
        ).take(50)
        sizes = {s.records for s in specs}
        assert sizes <= {1_000, 8_000}
        assert len(sizes) == 2  # both sizes appear over 50 draws

    def test_validation(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(0.0)
        with pytest.raises(ConfigError):
            PoissonArrivals(10.0, tenants=0)
        with pytest.raises(ConfigError):
            PoissonArrivals(10.0, systems=())
        with pytest.raises(ConfigError):
            PoissonArrivals(10.0, size_mix=[(0, 1.0)])

    def test_infinite_flag(self):
        assert PoissonArrivals(10.0).finite is False


class TestBursty:
    def test_same_seed_byte_identical(self):
        a = BurstyArrivals(500.0, seed=11, period=0.01).take(100)
        b = BurstyArrivals(500.0, seed=11, period=0.01).take(100)
        assert stream_fingerprint(a) == stream_fingerprint(b)

    def test_thinning_keeps_times_monotonic(self):
        specs = BurstyArrivals(1000.0, seed=2, period=0.02).take(80)
        times = [s.arrival_time for s in specs]
        assert all(t1 > t0 for t0, t1 in zip(times, times[1:]))

    def test_indices_stay_dense_despite_thinning(self):
        # Thinned candidates must not burn job indices: names/seeds of
        # accepted jobs stay contiguous.
        specs = BurstyArrivals(1000.0, seed=2, period=0.02).take(30)
        assert [s.index for s in specs] == list(range(30))

    def test_validation(self):
        with pytest.raises(ConfigError):
            BurstyArrivals(0.0)
        with pytest.raises(ConfigError):
            BurstyArrivals(10.0, period=0.0)
        with pytest.raises(ConfigError):
            BurstyArrivals(10.0, amplitude=1.0)
        with pytest.raises(ConfigError):
            BurstyArrivals(10.0, amplitude=-0.1)


class TestTrace:
    def test_dict_entries_fill_defaults(self):
        trace = TraceArrivals(
            [{"t": 0.0}, {"t": 0.5, "records": 9_000, "tenant": "vip",
              "deadline": 0.25}],
            records=2_000, system="wiscsort", seed=100,
        )
        assert trace.finite is True
        assert len(trace) == 2
        first, second = list(trace)
        assert first.records == 2_000 and first.seed == 100
        assert second.records == 9_000 and second.tenant == "vip"
        assert second.deadline == 0.25

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown fields"):
            TraceArrivals([{"t": 0.0, "priority": 1}])

    def test_missing_t_rejected(self):
        with pytest.raises(ConfigError, match="missing 't'"):
            TraceArrivals([{"records": 10}])

    def test_non_monotonic_rejected(self):
        with pytest.raises(ConfigError, match="sort the trace"):
            TraceArrivals([{"t": 1.0}, {"t": 0.5}])

    def test_from_file_jsonl(self, tmp_path):
        path = tmp_path / "arrivals.jsonl"
        path.write_text(
            "# captured trace\n"
            '{"t": 0.0}\n'
            "\n"
            '{"t": 0.25, "records": 3000}\n',
            encoding="utf-8",
        )
        trace = TraceArrivals.from_file(str(path), records=1_000)
        assert len(trace) == 2
        assert list(trace)[1].records == 3_000

    def test_from_file_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n", encoding="utf-8")
        with pytest.raises(ConfigError, match="not valid JSON"):
            TraceArrivals.from_file(str(path))
