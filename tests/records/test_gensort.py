"""Tests for the gensort-workalike generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import RecordFormatError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset, make_records


class TestMakeRecords:
    def test_shape_and_dtype(self, fmt):
        records = make_records(100, fmt, seed=1)
        assert records.shape == (100, 100)
        assert records.dtype == np.uint8

    def test_deterministic_by_seed(self, fmt):
        a = make_records(50, fmt, seed=5)
        b = make_records(50, fmt, seed=5)
        c = make_records(50, fmt, seed=6)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_ascii_mode_keys_printable(self, fmt):
        records = make_records(200, fmt, seed=1, ascii_keys=True)
        keys = records[:, : fmt.key_size]
        assert keys.min() >= 32 and keys.max() <= 126

    def test_binary_keys_cover_range(self, fmt):
        records = make_records(5000, fmt, seed=1)
        keys = records[:, : fmt.key_size]
        assert keys.min() < 16 and keys.max() > 239

    def test_record_ids_embedded_in_values(self, fmt):
        records = make_records(300, fmt, seed=1)
        values = records[:, fmt.key_size :]
        ids = values[:, :8].copy().view("<u8").reshape(-1)
        assert ids.tolist() == list(range(300))

    def test_values_unique_per_record(self, fmt):
        records = make_records(100, fmt, seed=1)
        values = {bytes(v) for v in records[:, fmt.key_size :]}
        assert len(values) == 100

    def test_zero_records(self, fmt):
        assert make_records(0, fmt).shape == (0, 100)

    def test_negative_rejected(self, fmt):
        with pytest.raises(RecordFormatError):
            make_records(-1, fmt)

    def test_tiny_value_size(self):
        fmt = RecordFormat(key_size=4, value_size=2)
        records = make_records(10, fmt, seed=1)
        assert records.shape == (10, 6)

    def test_zero_value_size(self):
        fmt = RecordFormat(key_size=8, value_size=0)
        records = make_records(10, fmt, seed=1)
        assert records.shape == (10, 8)


class TestGenerateDataset:
    def test_file_holds_all_records(self, pmem, fmt):
        machine = Machine(profile=pmem)
        f = generate_dataset(machine, "input", 100, fmt, seed=3)
        assert f.size == 100 * fmt.record_size
        data = f.peek().reshape(-1, fmt.record_size)
        assert np.array_equal(data, make_records(100, fmt, seed=3))

    def test_generation_is_untimed(self, pmem, fmt):
        machine = Machine(profile=pmem)
        generate_dataset(machine, "input", 100, fmt)
        assert machine.now == 0.0
