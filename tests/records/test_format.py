"""Property tests: byte-exact key ordering must match Python's bytes order."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecordFormatError
from repro.records.format import (
    RecordFormat,
    key_columns,
    key_sort_indices,
    keys_ascending,
    leq_mask,
    min_key,
    record_sort_indices,
)


def keys_matrix(draw, min_rows=0, max_rows=40, min_width=1, max_width=20):
    width = draw(st.integers(min_width, max_width))
    rows = draw(
        st.lists(
            st.binary(min_size=width, max_size=width),
            min_size=min_rows,
            max_size=max_rows,
        )
    )
    if not rows:
        return np.zeros((0, width), dtype=np.uint8)
    return np.frombuffer(b"".join(rows), dtype=np.uint8).reshape(len(rows), width)


keys_strategy = st.composite(keys_matrix)


class TestKeySort:
    @settings(max_examples=150, deadline=None)
    @given(keys=keys_strategy())
    def test_sort_matches_python_bytes_order(self, keys):
        order = key_sort_indices(keys)
        ours = [bytes(keys[i]) for i in order]
        assert ours == sorted(bytes(row) for row in keys)

    @settings(max_examples=100, deadline=None)
    @given(keys=keys_strategy(min_rows=1))
    def test_sort_is_stable(self, keys):
        # Duplicate every row; stable sort must keep original-first order.
        doubled = np.concatenate([keys, keys])
        order = key_sort_indices(doubled)
        n = keys.shape[0]
        seen = {}
        for idx in order:
            row = bytes(doubled[idx])
            if row in seen and seen[row] == "second":
                continue
            if idx < n:
                seen[row] = "first"
            else:
                assert seen.get(row) == "first", "duplicate emitted out of order"
                seen[row] = "second"

    def test_keys_with_embedded_nulls(self):
        keys = np.array(
            [list(b"a\x00b"), list(b"a\x00a"), list(b"\x00\x00\x00")], dtype=np.uint8
        )
        order = key_sort_indices(keys)
        assert [bytes(keys[i]) for i in order] == [b"\x00\x00\x00", b"a\x00a", b"a\x00b"]

    def test_high_bytes_sort_unsigned(self):
        keys = np.array([[0xFF], [0x01], [0x80]], dtype=np.uint8)
        order = key_sort_indices(keys)
        assert [keys[i, 0] for i in order] == [0x01, 0x80, 0xFF]

    def test_record_sort_uses_leading_key_only(self):
        records = np.array(
            [list(b"bXXX"), list(b"aZZZ"), list(b"aAAA")], dtype=np.uint8
        )
        order = record_sort_indices(records, key_size=1)
        assert [bytes(records[i]) for i in order] == [b"aZZZ", b"aAAA", b"bXXX"]

    def test_key_columns_width_padding(self):
        keys = np.zeros((3, 10), dtype=np.uint8)
        cols = key_columns(keys)
        assert len(cols) == 2  # 10 bytes -> 2 u64 columns


class TestAscending:
    @settings(max_examples=100, deadline=None)
    @given(keys=keys_strategy())
    def test_matches_python_definition(self, keys):
        rows = [bytes(r) for r in keys]
        expected = all(a <= b for a, b in zip(rows, rows[1:]))
        assert keys_ascending(keys) == expected

    def test_sorted_output_always_ascending(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 256, size=(500, 10), dtype=np.uint8)
        assert keys_ascending(keys[key_sort_indices(keys)])

    def test_empty_and_single(self):
        assert keys_ascending(np.zeros((0, 4), dtype=np.uint8))
        assert keys_ascending(np.zeros((1, 4), dtype=np.uint8))


class TestLeqMask:
    @settings(max_examples=100, deadline=None)
    @given(keys=keys_strategy(min_rows=1))
    def test_matches_python_comparison(self, keys):
        bound = keys[0]
        mask = leq_mask(keys, bound)
        expected = [bytes(r) <= bytes(bound) for r in keys]
        assert mask.tolist() == expected

    def test_width_mismatch_rejected(self):
        keys = np.zeros((2, 4), dtype=np.uint8)
        with pytest.raises(RecordFormatError):
            leq_mask(keys, np.zeros(5, dtype=np.uint8))


class TestMinKey:
    @settings(max_examples=100, deadline=None)
    @given(keys=keys_strategy(min_rows=1))
    def test_matches_python_min(self, keys):
        assert bytes(min_key(keys)) == min(bytes(r) for r in keys)

    def test_empty_rejected(self):
        with pytest.raises(RecordFormatError):
            min_key(np.zeros((0, 4), dtype=np.uint8))


class TestRecordFormat:
    def test_defaults_match_sortbenchmark(self):
        fmt = RecordFormat()
        assert fmt.record_size == 100
        assert fmt.index_entry_size == 15
        assert fmt.max_addressable_records() == 1 << 40

    def test_invalid_geometry_rejected(self):
        with pytest.raises(RecordFormatError):
            RecordFormat(key_size=0)
        with pytest.raises(RecordFormatError):
            RecordFormat(value_size=-1)
        with pytest.raises(RecordFormatError):
            RecordFormat(pointer_size=9)

    def test_file_bytes(self):
        assert RecordFormat().file_bytes(1000) == 100_000

    def test_describe(self):
        assert "10B key" in RecordFormat().describe()
