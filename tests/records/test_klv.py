"""Property and unit tests for the KLV variable-length encoding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import RecordFormatError
from repro.machine import Machine
from repro.records.klv import KLVFormat, decode_klv, encode_klv, generate_klv_dataset


@st.composite
def klv_payload(draw, key_size=6, max_records=20, max_value=50):
    n = draw(st.integers(0, max_records))
    keys = [draw(st.binary(min_size=key_size, max_size=key_size)) for _ in range(n)]
    values = [draw(st.binary(min_size=0, max_size=max_value)) for _ in range(n)]
    return keys, values


class TestRoundtrip:
    @settings(max_examples=80, deadline=None)
    @given(payload=klv_payload())
    def test_encode_decode_roundtrip(self, payload):
        keys, values = payload
        fmt = KLVFormat(key_size=6, len_size=2)
        key_matrix = (
            np.frombuffer(b"".join(keys), dtype=np.uint8).reshape(len(keys), 6)
            if keys
            else np.zeros((0, 6), dtype=np.uint8)
        )
        value_arrays = [np.frombuffer(v, dtype=np.uint8) for v in values]
        stream = encode_klv(key_matrix, value_arrays, fmt)
        decoded = decode_klv(stream, fmt)
        assert decoded == list(zip(keys, values))

    def test_empty_stream(self):
        fmt = KLVFormat()
        assert decode_klv(np.zeros(0, dtype=np.uint8), fmt) == []

    def test_zero_length_values_allowed(self):
        fmt = KLVFormat(key_size=2, len_size=1)
        keys = np.array([[1, 2]], dtype=np.uint8)
        stream = encode_klv(keys, [np.zeros(0, dtype=np.uint8)], fmt)
        assert decode_klv(stream, fmt) == [(b"\x01\x02", b"")]


class TestErrors:
    def test_value_exceeding_len_field_rejected(self):
        fmt = KLVFormat(key_size=2, len_size=1)  # max value 255
        keys = np.array([[0, 0]], dtype=np.uint8)
        with pytest.raises(RecordFormatError):
            encode_klv(keys, [np.zeros(300, dtype=np.uint8)], fmt)

    def test_truncated_header_rejected(self):
        fmt = KLVFormat(key_size=4, len_size=2)
        with pytest.raises(RecordFormatError):
            decode_klv(np.zeros(3, dtype=np.uint8), fmt)

    def test_truncated_value_rejected(self):
        fmt = KLVFormat(key_size=2, len_size=1)
        stream = np.array([0, 0, 10, 1, 2], dtype=np.uint8)  # claims 10B value
        with pytest.raises(RecordFormatError):
            decode_klv(stream, fmt)

    def test_count_mismatch_rejected(self):
        fmt = KLVFormat(key_size=2, len_size=1)
        keys = np.zeros((2, 2), dtype=np.uint8)
        with pytest.raises(RecordFormatError):
            encode_klv(keys, [np.zeros(1, dtype=np.uint8)], fmt)

    def test_invalid_format_rejected(self):
        with pytest.raises(RecordFormatError):
            KLVFormat(key_size=0)
        with pytest.raises(RecordFormatError):
            KLVFormat(len_size=9)


class TestGenerateKlv:
    def test_dataset_parses_and_respects_bounds(self, pmem):
        machine = Machine(profile=pmem)
        fmt = KLVFormat()
        f = generate_klv_dataset(
            machine, "klv", 100, fmt, min_value=5, max_value=30, seed=2
        )
        pairs = decode_klv(f.peek(), fmt)
        assert len(pairs) == 100
        assert all(5 <= len(v) <= 30 for _, v in pairs)

    def test_header_and_entry_sizes(self):
        fmt = KLVFormat(key_size=10, len_size=4, pointer_size=5)
        assert fmt.header_size == 14
        assert fmt.index_entry_size == 19
        assert fmt.max_value_size() == (1 << 32) - 1

    def test_invalid_bounds_rejected(self, pmem):
        machine = Machine(profile=pmem)
        with pytest.raises(RecordFormatError):
            generate_klv_dataset(machine, "bad", 10, min_value=10, max_value=5)
