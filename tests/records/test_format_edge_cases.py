"""Additional edge cases for key machinery: widths around u64 chunks."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.records.format import (
    key_columns,
    key_sort_indices,
    keys_ascending,
    leq_mask,
)


class TestChunkBoundaries:
    @pytest.mark.parametrize("width", [1, 7, 8, 9, 15, 16, 17, 24])
    def test_sort_correct_at_every_chunk_width(self, width):
        rng = np.random.default_rng(width)
        keys = rng.integers(0, 256, size=(300, width), dtype=np.uint8)
        order = key_sort_indices(keys)
        as_bytes = [bytes(keys[i]) for i in order]
        assert as_bytes == sorted(bytes(k) for k in keys)

    @pytest.mark.parametrize("width", [8, 16])
    def test_exact_multiple_widths_have_no_padding_column(self, width):
        keys = np.zeros((4, width), dtype=np.uint8)
        assert len(key_columns(keys)) == width // 8

    def test_padding_does_not_affect_order(self):
        # Keys differing only in the last byte of a non-multiple width:
        # the zero padding must not mask the difference.
        keys = np.zeros((2, 9), dtype=np.uint8)
        keys[0, 8] = 1
        keys[1, 8] = 2
        order = key_sort_indices(keys)
        assert order.tolist() == [0, 1]

    def test_prefix_equal_suffix_decides(self):
        keys = np.zeros((2, 12), dtype=np.uint8)
        keys[:, :8] = 0xAB
        keys[0, 11] = 9
        keys[1, 11] = 3
        assert key_sort_indices(keys).tolist() == [1, 0]


class TestLeqTransitivity:
    @settings(max_examples=50, deadline=None)
    @given(
        data=st.lists(st.binary(min_size=5, max_size=5), min_size=3, max_size=3)
    )
    def test_leq_is_consistent_with_sorting(self, data):
        keys = np.frombuffer(b"".join(data), dtype=np.uint8).reshape(3, 5)
        order = key_sort_indices(keys)
        ordered = keys[order]
        assert keys_ascending(ordered)
        # Every row is <= the last row of the sorted order.
        assert leq_mask(ordered, ordered[-1]).all()
