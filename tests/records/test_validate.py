"""Tests for the valsort-workalike validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.machine import Machine
from repro.records.format import record_sort_indices
from repro.records.gensort import make_records
from repro.records.klv import KLVFormat, encode_klv
from repro.records.validate import (
    validate_sorted_file,
    validate_sorted_klv,
    validate_sorted_records,
)


@pytest.fixture
def sorted_pair(fmt):
    records = make_records(200, fmt, seed=9)
    output = records[record_sort_indices(records, fmt.key_size)]
    return records, output


class TestFixedRecords:
    def test_accepts_valid_output(self, fmt, sorted_pair):
        records, output = sorted_pair
        validate_sorted_records(records, output, fmt.key_size)

    def test_rejects_unsorted_output(self, fmt, sorted_pair):
        records, output = sorted_pair
        swapped = output.copy()
        swapped[[0, -1]] = swapped[[-1, 0]]
        with pytest.raises(ValidationError, match="ascending"):
            validate_sorted_records(records, swapped, fmt.key_size)

    def test_rejects_mutated_value(self, fmt, sorted_pair):
        records, output = sorted_pair
        corrupted = output.copy()
        corrupted[10, fmt.key_size + 3] ^= 0xFF
        with pytest.raises(ValidationError, match="permutation"):
            validate_sorted_records(records, corrupted, fmt.key_size)

    def test_rejects_duplicated_record(self, fmt, sorted_pair):
        records, output = sorted_pair
        duped = output.copy()
        duped[5] = duped[6]
        with pytest.raises(ValidationError, match="permutation"):
            validate_sorted_records(records, duped, fmt.key_size)

    def test_rejects_count_mismatch(self, fmt, sorted_pair):
        records, output = sorted_pair
        with pytest.raises(ValidationError, match="counts differ"):
            validate_sorted_records(records, output[:-1], fmt.key_size)

    def test_file_level_validation(self, pmem, fmt, sorted_pair):
        records, output = sorted_pair
        machine = Machine(profile=pmem)
        fin = machine.fs.create("in")
        fout = machine.fs.create("out")
        fin.poke(0, records.reshape(-1))
        fout.poke(0, output.reshape(-1))
        assert validate_sorted_file(fin, fout, fmt) == 200

    def test_file_size_not_multiple_rejected(self, pmem, fmt):
        machine = Machine(profile=pmem)
        fin = machine.fs.create("in")
        fout = machine.fs.create("out")
        fin.poke(0, np.zeros(150, dtype=np.uint8))
        fout.poke(0, np.zeros(150, dtype=np.uint8))
        with pytest.raises(ValidationError, match="multiple"):
            validate_sorted_file(fin, fout, fmt)

    def test_duplicate_keys_in_any_relative_order_accepted(self, fmt):
        records = make_records(50, fmt, seed=1)
        records[:, : fmt.key_size] = 7  # all keys identical
        # any permutation is a valid sort
        rng = np.random.default_rng(0)
        output = records[rng.permutation(50)]
        validate_sorted_records(records, output, fmt.key_size)


class TestKlvValidation:
    def _files(self, pmem, fmt, pairs_in, pairs_out):
        machine = Machine(profile=pmem)
        fin = machine.fs.create("in")
        fout = machine.fs.create("out")
        for f, pairs in ((fin, pairs_in), (fout, pairs_out)):
            keys = (
                np.frombuffer(
                    b"".join(k for k, _ in pairs), dtype=np.uint8
                ).reshape(len(pairs), fmt.key_size)
                if pairs
                else np.zeros((0, fmt.key_size), dtype=np.uint8)
            )
            values = [np.frombuffer(v, dtype=np.uint8) for _, v in pairs]
            f.poke(0, encode_klv(keys, values, fmt))
        return fin, fout

    def test_accepts_valid_klv(self, pmem):
        fmt = KLVFormat(key_size=2, len_size=1)
        pairs = [(b"bb", b"22"), (b"aa", b"1")]
        fin, fout = self._files(pmem, fmt, pairs, sorted(pairs))
        assert validate_sorted_klv(fin, fout, fmt) == 2

    def test_rejects_unsorted_klv(self, pmem):
        fmt = KLVFormat(key_size=2, len_size=1)
        pairs = [(b"aa", b"1"), (b"bb", b"2")]
        fin, fout = self._files(pmem, fmt, pairs, list(reversed(pairs)))
        with pytest.raises(ValidationError, match="ascending"):
            validate_sorted_klv(fin, fout, fmt)

    def test_rejects_value_swap(self, pmem):
        fmt = KLVFormat(key_size=2, len_size=1)
        pairs_in = [(b"aa", b"1"), (b"bb", b"2")]
        pairs_out = [(b"aa", b"2"), (b"bb", b"1")]
        fin, fout = self._files(pmem, fmt, pairs_in, pairs_out)
        with pytest.raises(ValidationError, match="permutation"):
            validate_sorted_klv(fin, fout, fmt)
