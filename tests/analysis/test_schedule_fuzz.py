"""Schedule fuzzing: seeded permutations of same-instant scheduling ties.

Every permuted schedule is legal, so a correct workload must produce
byte-identical output under any seed; an order-dependent one must be
caught.  These tests pin both directions.
"""

from __future__ import annotations

import pytest

from repro.analysis.race import (
    SchedulePermuter,
    ScheduleFuzzReport,
    schedule_fuzz,
    sort_output_fingerprint,
)
from repro.errors import ScheduleDivergenceError
from repro.machine import Machine
from repro.sim.engine import Join, Sleep, Spawn


def _run_tagged(machine, n, order):
    """Spawn n children that record their execution order."""

    def child(i):
        order.append(i)
        yield Sleep(0.0)

    def main():
        procs = []
        for i in range(n):
            procs.append((yield Spawn(child(i), name=f"c{i}")))
        yield Join(procs)

    machine.run(main(), name="main")


class TestPermuter:
    def test_same_seed_same_stream(self):
        a = SchedulePermuter(7)
        b = SchedulePermuter(7)
        assert [a.pick(5) for _ in range(20)] == [b.pick(5) for _ in range(20)]

    def test_picks_stay_in_range(self):
        p = SchedulePermuter(3)
        for n in range(1, 10):
            for _ in range(50):
                assert 0 <= p.pick(n) < n

    def test_shuffle_preserves_items(self):
        p = SchedulePermuter(11)
        items = list(range(10))
        shuffled = list(items)
        p.shuffle(shuffled)
        assert sorted(shuffled) == items


class TestEngineIntegration:
    def test_all_ready_processes_still_run(self):
        m = Machine()
        m.install_schedule_fuzz(5)
        order = []
        _run_tagged(m, 8, order)
        assert sorted(order) == list(range(8))

    def test_some_seed_permutes_fifo_order(self):
        fifo = []
        _run_tagged(Machine(), 8, fifo)
        assert fifo == list(range(8))  # FIFO baseline is spawn order
        permuted = False
        for seed in range(1, 6):
            m = Machine()
            m.install_schedule_fuzz(seed)
            order = []
            _run_tagged(m, 8, order)
            if order != fifo:
                permuted = True
        assert permuted, "no seed in 1..5 permuted an 8-way tie"

    def test_same_seed_reproduces_schedule(self):
        orders = []
        for _ in range(2):
            m = Machine()
            m.install_schedule_fuzz(9)
            order = []
            _run_tagged(m, 8, order)
            orders.append(order)
        assert orders[0] == orders[1]

    def test_permuter_survives_reboot(self):
        m = Machine()
        perm = m.install_schedule_fuzz(4)
        m.reboot()
        assert m.engine.schedule_fuzz is perm


class TestHarness:
    def test_clean_sort_is_schedule_invariant(self):
        from repro.api import RunOptions, sort

        opts = RunOptions(records=6_000, system="wiscsort-merge")
        report = schedule_fuzz(
            lambda seed: sort_output_fingerprint(
                sort(opts.replace(schedule_seed=seed))
            ),
            seeds=(1, 2, 3, 4, 5),
        )
        assert report.ok
        assert len(report.rows) == 6  # baseline + 5 seeds
        assert "OK" in report.render()
        report.raise_on_failure()

    def test_order_dependent_workload_caught(self):
        # Two unordered writers to the same region: last issuer wins, so
        # a permuted schedule flips the bytes.  The fuzz harness must
        # catch exactly this.
        def run(seed):
            m = Machine()
            if seed is not None:
                m.install_schedule_fuzz(seed)
            f = m.fs.create("hot")
            f.poke(0, b"\x00" * 512)

            def writer(byte):
                yield f.write(0, bytes([byte]) * 256, tag="W")

            def main():
                a = yield Spawn(writer(0xAA), name="a")
                b = yield Spawn(writer(0xBB), name="b")
                yield Join([a, b])

            m.run(main(), name="main")
            from repro.analysis.race import file_fingerprint

            return file_fingerprint(f)

        report = schedule_fuzz(run, seeds=(1, 2, 3, 4, 5))
        assert not report.ok
        assert report.mismatches
        assert "FAILED" in report.render()
        with pytest.raises(ScheduleDivergenceError):
            report.raise_on_failure()

    def test_report_shapes(self):
        report = ScheduleFuzzReport(
            baseline="abc",
            rows=[("baseline", "abc"), ("seed 1", "abc"), ("seed 2", "xyz")],
            mismatches=[(2, "xyz")],
        )
        assert not report.ok
        rendered = report.render()
        assert "abc" in rendered and "xyz" in rendered


class TestFaultedClusterFuzz:
    def test_crash_recovery_is_schedule_invariant(self):
        """A shard crash mid-sort recovers to identical bytes per seed."""
        from repro.analysis.race import cluster_output_fingerprint
        from repro.cluster import (
            Cluster,
            ShardedWiscSort,
            generate_cluster_dataset,
        )
        from repro.faults.harness import run_cluster_with_faults
        from repro.faults.plan import FaultPlan, parse_fault_spec
        from repro.records.format import RecordFormat

        fmt = RecordFormat()
        n = 4000
        spec = "shard1:crash@50%"

        def build():
            cluster = Cluster(shards=2)
            data = generate_cluster_dataset(cluster, "input", n, fmt, seed=1)
            return cluster, data

        probe, probe_data = build()
        probe_state = probe.install_faults(FaultPlan(), count_only=True)
        ShardedWiscSort(fmt, checkpoint=True).run(
            probe, probe_data, validate=False
        )
        counts = probe_state.ops_seen()

        def run(seed):
            cluster, data = build()
            if seed is not None:
                cluster.install_schedule_fuzz(seed)
            plan = parse_fault_spec(spec, seed=1)
            for dom, c in counts.items():
                assert c > 0, dom
            cluster.install_faults(plan, counts=counts)
            system = ShardedWiscSort(fmt, checkpoint=True)
            result, _report = run_cluster_with_faults(system, cluster, data)
            return cluster_output_fingerprint(
                cluster, result.output_name, len(data.parts)
            )

        report = schedule_fuzz(run, seeds=(1, 2))
        assert report.ok, report.render()
