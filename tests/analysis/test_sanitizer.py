"""Runtime SimSanitizer tests: deadlock naming, charge audit, determinism."""

import numpy as np
import pytest

from repro.analysis.sanitizer import SimSanitizer, diff_traces, verify_determinism
from repro.core.base import SortConfig
from repro.core.wiscsort import WiscSort
from repro.errors import ChargeDriftError, DeadlockError, DeterminismError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.units import KiB
from repro.workloads.background import BackgroundClients


# ----------------------------------------------------------------------
# Deadlock diagnostics
# ----------------------------------------------------------------------


class TestDeadlockDiagnostics:
    def test_stuck_barrier_names_coroutines(self):
        """A 3-party barrier entered by only 2 workers deadlocks; the
        error must name both stuck coroutines and the barrier state."""
        machine = Machine()
        machine.install_sanitizer()
        bar = machine.barrier(3, name="phase-gate")

        def worker():
            yield bar.wait()

        machine.engine.spawn(worker(), name="reader-0")
        machine.engine.spawn(worker(), name="reader-1")
        with pytest.raises(DeadlockError) as exc_info:
            machine.engine.run()
        msg = str(exc_info.value)
        assert "reader-0" in msg
        assert "reader-1" in msg
        assert "phase-gate" in msg
        assert "arrived 2/3" in msg

    def test_queue_deadlock_shows_getter(self):
        machine = Machine()
        machine.install_sanitizer()
        q = machine.queue(name="work-items")

        def consumer():
            yield q.get()

        machine.engine.spawn(consumer(), name="consumer")
        with pytest.raises(DeadlockError) as exc_info:
            machine.engine.run()
        msg = str(exc_info.value)
        assert "consumer" in msg
        assert "work-items" in msg
        assert "get" in msg

    def test_semaphore_deadlock_shows_waiter(self):
        machine = Machine()
        machine.install_sanitizer()
        sem = machine.semaphore(0, name="permits")

        def taker():
            yield sem.acquire()

        machine.engine.spawn(taker(), name="taker")
        with pytest.raises(DeadlockError) as exc_info:
            machine.engine.run()
        msg = str(exc_info.value)
        assert "taker" in msg
        assert "permits" in msg
        assert "count=0" in msg

    def test_without_sanitizer_points_at_flag(self):
        machine = Machine()
        bar = machine.barrier(2)

        def worker():
            yield bar.wait()

        machine.engine.spawn(worker(), name="lonely")
        with pytest.raises(DeadlockError) as exc_info:
            machine.engine.run()
        assert "--sanitize" in str(exc_info.value)

    def test_waits_clear_on_wake(self):
        """A completed rendezvous leaves no tracked waits behind."""
        machine = Machine()
        san = machine.install_sanitizer()
        bar = machine.barrier(2)

        def worker():
            yield bar.wait()

        machine.engine.spawn(worker(), name="a")
        machine.engine.spawn(worker(), name="b")
        machine.engine.run()
        assert san.waits == {}


# ----------------------------------------------------------------------
# Charge accounting audit
# ----------------------------------------------------------------------


class TestChargeAudit:
    def test_clean_run_zero_drift(self):
        machine = Machine()
        san = machine.install_sanitizer()
        f = machine.fs.create("data")
        f.poke(0, np.arange(512, dtype=np.uint8))  # fixture: engine idle

        def job():
            payload = yield f.read(0, 256, tag="RUN read")
            yield f.write(512, payload, tag="RUN write")

        machine.run(job(), name="job")
        san.check()  # must not raise
        report = san.audit_report()
        assert report["moved_read"] == 256
        assert report["moved_write"] == 256
        assert report["charged_read"] == 256.0
        assert report["charged_write"] == 256.0
        assert report["raw_uncharged_moves"] == 0
        assert report["drift"] == []

    def test_uncharged_poke_mid_run_trips_auditor(self):
        """The deliberate violation: raw bytes moved while the event
        loop runs, with no device charge -- the auditor must fail."""
        machine = Machine()
        san = machine.install_sanitizer()
        f = machine.fs.create("smuggled")

        def job():
            f.poke(0, np.zeros(4096, dtype=np.uint8))  # uncharged!
            yield machine.compute(1e-6, tag="RUN sort")

        machine.run(job(), name="smuggler")
        with pytest.raises(ChargeDriftError) as exc_info:
            san.check()
        msg = str(exc_info.value)
        assert "4096" in msg
        assert "smuggled" in msg

    def test_uncharged_peek_mid_run_trips_auditor(self):
        machine = Machine()
        san = machine.install_sanitizer()
        f = machine.fs.create("data")
        f.poke(0, np.zeros(128, dtype=np.uint8))

        def job():
            f.peek(0, 128)  # uncharged!
            yield machine.compute(1e-6, tag="RUN sort")

        machine.run(job(), name="peeker")
        with pytest.raises(ChargeDriftError):
            san.check()

    def test_unaudited_scope_exempts_with_reason(self):
        machine = Machine()
        san = machine.install_sanitizer()
        f = machine.fs.create("data")
        f.poke(0, np.zeros(128, dtype=np.uint8))

        def job():
            with machine.fs.unaudited("metadata scan"):
                f.peek(0, 128)
            yield machine.compute(1e-6, tag="RUN sort")

        machine.run(job(), name="scanner")
        san.check()
        assert san.audit_report()["exempt_raw_bytes"] == {"metadata scan": 128}

    def test_fixture_access_outside_loop_ignored(self):
        machine = Machine()
        san = machine.install_sanitizer()
        f = machine.fs.create("data")
        f.poke(0, np.zeros(1024, dtype=np.uint8))  # before the run

        def job():
            yield machine.compute(1e-6, tag="RUN sort")

        machine.run(job(), name="noop")
        f.peek()  # after the run (validation-style access)
        san.check()
        assert san.audit_report()["raw_uncharged_moves"] == 0

    def test_background_charges_are_non_storage(self):
        """BackgroundClients charge the device without storage moves;
        that is legal and lands in the non-storage bucket."""
        machine = Machine()
        san = machine.install_sanitizer()
        BackgroundClients(machine, 2, "write").start()
        f = machine.fs.create("data")
        f.poke(0, np.zeros(64 * 1024, dtype=np.uint8))

        def job():
            yield f.read(0, 64 * 1024, tag="RUN read")

        machine.run(job(), name="job")
        san.check()
        report = san.audit_report()
        assert report["non_storage_charged_write"] > 0
        assert report["moved_write"] == 0

    def test_full_sort_audits_clean(self):
        machine = Machine()
        san = machine.install_sanitizer()
        fmt = RecordFormat()
        data = generate_dataset(machine, "input", 5_000, fmt, seed=11)
        cfg = SortConfig(read_buffer=96 * KiB, write_buffer=8 * KiB)
        system = WiscSort(
            fmt, config=cfg, force_merge_pass=True, merge_chunk_entries=800
        )
        system.run(machine, data, validate=True)
        san.check()
        report = san.audit_report()
        assert report["moved_read"] > 0
        assert report["moved_read"] == report["charged_read"]
        assert report["moved_write"] == report["charged_write"]


# ----------------------------------------------------------------------
# Determinism harness
# ----------------------------------------------------------------------


def _small_sort(san: SimSanitizer, records: int = 2_000) -> None:
    machine = Machine()
    san.install(machine)
    fmt = RecordFormat()
    data = generate_dataset(machine, "input", records, fmt, seed=5)
    WiscSort(fmt).run(machine, data, validate=False)


class TestDeterminism:
    def test_identical_runs_pass(self):
        report = verify_determinism(_small_sort, runs=2)
        assert report.ok
        assert report.events > 0
        assert len(set(report.digests)) == 1
        report.raise_on_failure()  # no-op when ok

    def test_divergent_runs_fail(self):
        """A run_fn that is *not* the same workload twice (here: different
        record counts, so a different op stream) must be caught."""
        counts = iter([2_000, 2_100])

        def run_once(san):
            _small_sort(san, records=next(counts))

        report = verify_determinism(run_once, runs=2)
        assert not report.ok
        assert report.divergence is not None
        with pytest.raises(DeterminismError):
            report.raise_on_failure()

    def test_diff_traces_finds_first_divergence(self):
        a = [("op", 1.0, "io", "t", 5.0), ("op", 2.0, "io", "t", 5.0)]
        b = [("op", 1.0, "io", "t", 5.0), ("op", 2.5, "io", "t", 5.0)]
        d = diff_traces(a, b)
        assert d["index"] == 1
        assert diff_traces(a, a) is None

    def test_length_mismatch_detected(self):
        a = [("proc", 1.0, "x")]
        d = diff_traces(a, a + [("proc", 2.0, "y")])
        assert d["index"] == 1
        assert d["a"] == "<run ended>"

    def test_needs_two_runs(self):
        with pytest.raises(ValueError):
            verify_determinism(_small_sort, runs=1)

    def test_trace_digest_requires_tracing(self):
        with pytest.raises(ValueError):
            SimSanitizer(trace=False).trace_digest()


# ----------------------------------------------------------------------
# Crash / reboot interaction
# ----------------------------------------------------------------------


class TestRebootIntegration:
    def test_sanitizer_survives_reboot(self):
        """After Machine.reboot() the sanitizer re-attaches to the new
        engine and keeps auditing (charges from both boots add up)."""
        machine = Machine()
        san = machine.install_sanitizer()
        f = machine.fs.create("data")
        f.poke(0, np.zeros(256, dtype=np.uint8))

        def job():
            yield f.read(0, 128, tag="RUN read")

        machine.run(job(), name="boot-1")
        machine.reboot()
        assert machine.engine.sanitizer is san
        machine.run(job(), name="boot-2")
        san.check()
        assert san.audit_report()["moved_read"] == 256

    def test_observe_only_fingerprint_stability(self):
        """Installing the sanitizer must not change simulated results."""

        def run(with_sanitizer: bool) -> float:
            machine = Machine()
            if with_sanitizer:
                machine.install_sanitizer()
            fmt = RecordFormat()
            data = generate_dataset(machine, "input", 2_000, fmt, seed=3)
            WiscSort(fmt).run(machine, data, validate=False)
            return machine.engine.now

        assert run(False) == run(True)
