"""Per-rule unit tests for reprolint (repro.analysis.lint / .rules)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths, lint_source, main
from repro.analysis.rules import RULES, rules_for_path

REPO = Path(__file__).resolve().parents[2]

#: A src-tree-looking path so no rule is path-exempted.
SRC = "src/repro/sim/something.py"
#: A core path, where DEV001 is live.
CORE = "src/repro/core/something.py"


def rules_hit(source, path=SRC, select=None):
    return sorted({f.rule for f in lint_source(source, path, select)})


# ----------------------------------------------------------------------
# SIM001: wall-clock reads
# ----------------------------------------------------------------------


class TestSIM001:
    def test_time_module_call_flagged(self):
        src = "import time\nt = time.perf_counter()\n"
        (f,) = lint_source(src, SRC, ["SIM001"])
        assert f.rule == "SIM001"
        assert "perf_counter" in f.message
        assert f.line == 2

    def test_aliased_import_flagged(self):
        src = "import time as _t\nx = _t.monotonic()\n"
        assert rules_hit(src, select=["SIM001"]) == ["SIM001"]

    def test_from_import_flagged(self):
        src = "from time import perf_counter\nx = perf_counter()\n"
        assert rules_hit(src, select=["SIM001"]) == ["SIM001"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nx = datetime.now()\n"
        assert rules_hit(src, select=["SIM001"]) == ["SIM001"]

    def test_simulated_clock_ok(self):
        src = "def f(engine):\n    return engine.now\n"
        assert rules_hit(src, select=["SIM001"]) == []

    def test_time_sleep_ok(self):
        # Only clock *reads* are flagged (sleep is caught by review, not
        # this rule) -- time.sleep is not in the wall-clock read set.
        src = "import time\ntime.sleep(1)\n"
        assert rules_hit(src, select=["SIM001"]) == []

    def test_perf_paths_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        for path in ("src/repro/perf/profiler.py", "benchmarks/bench_x.py",
                     "tests/test_x.py"):
            assert lint_source(src, path, ["SIM001"]) == []


# ----------------------------------------------------------------------
# SIM002: unseeded RNG
# ----------------------------------------------------------------------


class TestSIM002:
    def test_module_level_random_flagged(self):
        src = "import random\nx = random.random()\n"
        (f,) = lint_source(src, SRC, ["SIM002"])
        assert "seeded" in f.message

    def test_unseeded_random_instance_flagged(self):
        src = "import random\nrng = random.Random()\n"
        assert rules_hit(src, select=["SIM002"]) == ["SIM002"]

    def test_seeded_random_instance_ok(self):
        src = "import random\nrng = random.Random(42)\n"
        assert rules_hit(src, select=["SIM002"]) == []

    def test_np_legacy_global_flagged(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_hit(src, select=["SIM002"]) == ["SIM002"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_hit(src, select=["SIM002"]) == ["SIM002"]

    def test_seeded_default_rng_ok(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert rules_hit(src, select=["SIM002"]) == []

    def test_not_exempt_in_tests(self):
        # Unlike the other rules, SIM002 applies everywhere -- a test
        # with unseeded randomness is a flaky test.
        src = "import random\nx = random.random()\n"
        assert rules_hit(src, path="tests/test_x.py", select=["SIM002"]) == [
            "SIM002"
        ]


# ----------------------------------------------------------------------
# SIM003: unordered iteration
# ----------------------------------------------------------------------


class TestSIM003:
    def test_for_over_set_literal_flagged(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_for_over_set_variable_flagged(self):
        src = "s = set()\nfor x in s:\n    print(x)\n"
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_sorted_wrapper_ok(self):
        src = "s = set()\nfor x in sorted(s):\n    print(x)\n"
        assert rules_hit(src, select=["SIM003"]) == []

    def test_dict_values_flagged(self):
        src = "d = {}\nxs = [v for v in d.values()]\n"
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_list_of_set_flagged(self):
        src = "s = set()\nxs = list(s)\n"
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_known_set_attribute_flagged(self):
        # fluid.FluidScheduler.active and ._dirty_keys are known sets
        # even through an attribute alias.
        src = "def f(self):\n    keys = self._dirty_keys\n    for k in keys:\n        pass\n"
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_rebinding_clears_tracking(self):
        src = "s = set()\ns = [1, 2]\nfor x in s:\n    pass\n"
        assert rules_hit(src, select=["SIM003"]) == []

    def test_membership_test_ok(self):
        src = "s = set()\nif 3 in s:\n    pass\n"
        assert rules_hit(src, select=["SIM003"]) == []

    def test_building_a_set_ok(self):
        # set comprehension *over* a set: the result is unordered anyway.
        src = "s = set()\nt = {x for x in s}\n"
        assert rules_hit(src, select=["SIM003"]) == []


# ----------------------------------------------------------------------
# SIM004: float equality on simulated time
# ----------------------------------------------------------------------


class TestSIM004:
    def test_eq_on_time_name_flagged(self):
        src = "def f(now, deadline):\n    return now == deadline\n"
        (f,) = lint_source(src, SRC, ["SIM004"])
        assert "time_eq" in f.message

    def test_ne_on_time_suffix_flagged(self):
        src = "def f(op):\n    return op.finished_at != 0.0\n"
        assert rules_hit(src, select=["SIM004"]) == ["SIM004"]

    def test_comparison_with_none_ok(self):
        src = "def f(op):\n    return op.finished_at is None or op.finished_at == None\n"
        assert rules_hit(src, select=["SIM004"]) == []

    def test_ordering_comparisons_ok(self):
        src = "def f(now, deadline):\n    return now <= deadline\n"
        assert rules_hit(src, select=["SIM004"]) == []

    def test_non_time_names_ok(self):
        src = "def f(count, total):\n    return count == total\n"
        assert rules_hit(src, select=["SIM004"]) == []


# ----------------------------------------------------------------------
# DEV001: uncharged byte moves in core/ and baselines/
# ----------------------------------------------------------------------


class TestDEV001:
    def test_peek_in_core_flagged(self):
        src = "def f(input_file):\n    return input_file.peek()\n"
        (f,) = lint_source(src, CORE, ["DEV001"])
        assert "peek" in f.message

    def test_poke_in_baselines_flagged(self):
        src = "def f(out):\n    out.poke(0, b'x')\n"
        path = "src/repro/baselines/x.py"
        assert rules_hit(src, path=path, select=["DEV001"]) == ["DEV001"]

    def test_data_attribute_in_core_flagged(self):
        src = "def f(f2):\n    return f2._data[0]\n"
        assert rules_hit(src, path=CORE, select=["DEV001"]) == ["DEV001"]

    def test_inactive_outside_core(self):
        src = "def f(input_file):\n    return input_file.peek()\n"
        assert rules_hit(src, path=SRC, select=["DEV001"]) == []

    def test_tests_exempt(self):
        src = "def f(input_file):\n    return input_file.peek()\n"
        path = "tests/core/test_x.py"
        assert rules_hit(src, path=path, select=["DEV001"]) == []

    def test_timed_apis_ok(self):
        src = "def f(input_file):\n    yield input_file.read(0, 10, tag='RUN read')\n"
        assert rules_hit(src, path=CORE, select=["DEV001"]) == []


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------


class TestPragmas:
    def test_line_disable(self):
        src = "import time\nt = time.perf_counter()  # reprolint: disable=SIM001 -- justified\n"
        assert lint_source(src, SRC, ["SIM001"]) == []

    def test_line_disable_wrong_rule_keeps_finding(self):
        src = "import time\nt = time.perf_counter()  # reprolint: disable=SIM002\n"
        assert rules_hit(src, select=["SIM001"]) == ["SIM001"]

    def test_disable_all(self):
        src = "import time\nt = time.perf_counter()  # reprolint: disable=all\n"
        assert lint_source(src, SRC) == []

    def test_file_disable(self):
        src = (
            "# reprolint: disable-file=SIM001\n"
            "import time\n"
            "a = time.perf_counter()\n"
            "b = time.monotonic()\n"
        )
        assert lint_source(src, SRC, ["SIM001"]) == []

    def test_multiple_rules_one_pragma(self):
        src = (
            "import time, random\n"
            "x = [time.perf_counter(), random.random()]  "
            "# reprolint: disable=SIM001,SIM002\n"
        )
        assert lint_source(src, SRC, ["SIM001", "SIM002"]) == []


# ----------------------------------------------------------------------
# Driver behaviour
# ----------------------------------------------------------------------


class TestDriver:
    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError):
            rules_for_path(SRC, ["SIM999"])

    def test_rules_registry_complete(self):
        assert set(RULES) == {
            "SIM001", "SIM002", "SIM003", "SIM004", "SIM005", "SIM006",
            "DEV001", "PRG001", "OBS001",
        }

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = lint_paths([str(bad)])
        assert len(findings) == 1
        assert findings[0].rule == "E999"

    def test_json_output(self, tmp_path, capsys):
        mod = tmp_path / "src" / "repro" / "sim" / "m.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import time\nt = time.time()\n")
        rc = main([str(mod), "--format", "json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert out["files_checked"] == 1
        assert out["findings"][0]["rule"] == "SIM001"
        assert out["summary"]["total"] == 1

    def test_clean_file_exit_zero(self, tmp_path, capsys):
        mod = tmp_path / "clean.py"
        mod.write_text("x = 1\n")
        assert main([str(mod)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_no_paths_usage_error(self, capsys):
        assert main([]) == 2
        capsys.readouterr()

    def test_repo_src_tree_is_clean(self):
        """The acceptance gate: the shipped tree lints clean."""
        findings = lint_paths([str(REPO / "src" / "repro")])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_module_entrypoint_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=str(REPO),
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "SIM001" in proc.stdout


# ----------------------------------------------------------------------
# SIM005: shared-state mutation from spawned coroutine bodies
# ----------------------------------------------------------------------


class TestSIM005:
    def test_closure_subscript_write_flagged(self):
        src = (
            "from repro.sim.engine import Spawn, Join\n"
            "def run(engine, results):\n"
            "    def worker(i):\n"
            "        yield engine.sleep(0)\n"
            "        results[i] = i\n"
            "    a = yield Spawn(worker(0))\n"
            "    b = yield Spawn(worker(1))\n"
            "    yield Join([a, b])\n"
        )
        (f,) = lint_source(src, SRC, ["SIM005"])
        assert f.rule == "SIM005"
        assert "worker" in f.message
        assert "results[...]" in f.message

    def test_self_attribute_write_flagged(self):
        src = (
            "class Pipeline:\n"
            "    def start(self, engine):\n"
            "        engine.spawn(self._stage())\n"
            "    def _stage(self):\n"
            "        yield None\n"
            "        self.done = True\n"
        )
        (f,) = lint_source(src, SRC, ["SIM005"])
        assert "self.done" in f.message

    def test_nonlocal_write_flagged(self):
        src = (
            "from repro.sim.engine import Spawn\n"
            "def run(engine):\n"
            "    total = 0\n"
            "    def adder():\n"
            "        nonlocal total\n"
            "        yield None\n"
            "        total += 1\n"
            "    yield Spawn(adder())\n"
        )
        assert rules_hit(src, select=["SIM005"]) == ["SIM005"]

    def test_arbiter_in_body_suppresses(self):
        src = (
            "from repro.sim.engine import Spawn\n"
            "def run(engine, sem, results):\n"
            "    def worker(i):\n"
            "        yield sem.acquire()\n"
            "        results[i] = i\n"
            "        sem.release()\n"
            "    yield Spawn(worker(0))\n"
        )
        assert rules_hit(src, select=["SIM005"]) == []

    def test_queue_put_suppresses(self):
        src = (
            "from repro.sim.engine import Spawn\n"
            "def run(engine, q):\n"
            "    def producer():\n"
            "        yield q.put(1)\n"
            "    yield Spawn(producer())\n"
        )
        assert rules_hit(src, select=["SIM005"]) == []

    def test_local_state_ok(self):
        src = (
            "from repro.sim.engine import Spawn\n"
            "def run(engine):\n"
            "    def worker():\n"
            "        acc = []\n"
            "        yield None\n"
            "        acc.append(1)\n"
            "        acc = acc + [2]\n"
            "    yield Spawn(worker())\n"
        )
        assert rules_hit(src, select=["SIM005"]) == []

    def test_unspawned_generator_ok(self):
        src = (
            "def run(self, results):\n"
            "    def helper(i):\n"
            "        yield None\n"
            "        results[i] = i\n"
            "    yield from helper(0)\n"
        )
        assert rules_hit(src, select=["SIM005"]) == []

    def test_tests_path_exempt(self):
        src = (
            "from repro.sim.engine import Spawn\n"
            "def run(engine, results):\n"
            "    def worker(i):\n"
            "        yield None\n"
            "        results[i] = i\n"
            "    yield Spawn(worker(0))\n"
        )
        assert rules_hit(src, path="tests/sim/test_x.py",
                         select=["SIM005"]) == []


# ----------------------------------------------------------------------
# SIM006: non-total sim-time sort keys
# ----------------------------------------------------------------------


class TestSIM006:
    def test_bare_time_attribute_key_flagged(self):
        src = "rows = sorted(tags.items(), key=lambda kv: kv[1].first_active)\n"
        (f,) = lint_source(src, SRC, ["SIM006"])
        assert f.rule == "SIM006"
        assert "first_active" in f.message

    def test_bare_time_name_key_flagged(self):
        src = "top = min(events, key=lambda deadline: deadline)\n"
        assert rules_hit(src, select=["SIM006"]) == ["SIM006"]

    def test_suffix_match_flagged(self):
        src = "evs.sort(key=lambda e: e.start_time)\n"
        assert rules_hit(src, select=["SIM006"]) == ["SIM006"]

    def test_tuple_key_ok(self):
        src = (
            "rows = sorted(tags.items(), "
            "key=lambda kv: (kv[1].first_active, kv[0]))\n"
        )
        assert rules_hit(src, select=["SIM006"]) == []

    def test_non_time_key_ok(self):
        src = "rows = sorted(tags.items(), key=lambda kv: kv[0])\n"
        assert rules_hit(src, select=["SIM006"]) == []

    def test_max_flagged(self):
        src = "last = max(spans, key=lambda s: s.closed_at)\n"
        assert rules_hit(src, select=["SIM006"]) == ["SIM006"]


# ----------------------------------------------------------------------
# SIM003 across local helper-function boundaries
# ----------------------------------------------------------------------


class TestSIM003HelperBoundary:
    def test_iterating_set_returning_helper_flagged(self):
        src = (
            "def _dirty():\n"
            "    return {1, 2}\n"
            "def run():\n"
            "    for k in _dirty():\n"
            "        print(k)\n"
        )
        (f,) = lint_source(src, SRC, ["SIM003"])
        assert "_dirty()" in f.message

    def test_binding_from_helper_tracked(self):
        src = (
            "def _dirty():\n"
            "    return set()\n"
            "def run():\n"
            "    keys = _dirty()\n"
            "    for k in keys:\n"
            "        print(k)\n"
        )
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_transitive_helper_tracked(self):
        src = (
            "def _inner():\n"
            "    return frozenset((1,))\n"
            "def _outer():\n"
            "    return _inner()\n"
            "def run():\n"
            "    for k in _outer():\n"
            "        print(k)\n"
        )
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_sorted_helper_result_ok(self):
        src = (
            "def _dirty():\n"
            "    return {1, 2}\n"
            "def run():\n"
            "    for k in sorted(_dirty()):\n"
            "        print(k)\n"
        )
        assert rules_hit(src, select=["SIM003"]) == []

    def test_list_returning_helper_ok(self):
        src = (
            "def _ordered():\n"
            "    return sorted({1, 2})\n"
            "def run():\n"
            "    for k in _ordered():\n"
            "        print(k)\n"
        )
        assert rules_hit(src, select=["SIM003"]) == []

    def test_mixed_returns_not_tracked(self):
        # One branch returns a list: the helper is not provably a set.
        src = (
            "def _maybe(flag):\n"
            "    if flag:\n"
            "        return {1}\n"
            "    return [1]\n"
            "def run():\n"
            "    for k in _maybe(True):\n"
            "        print(k)\n"
        )
        assert rules_hit(src, select=["SIM003"]) == []


# ----------------------------------------------------------------------
# PRG001: pragma hygiene
# ----------------------------------------------------------------------


class TestPragmaValidation:
    def test_unknown_rule_in_pragma_flagged(self):
        # The pragma is split across two literals so reprolint's own
        # line scan does not read this fixture as a pragma of this file.
        src = ("x = {1}\nfor i in x:  # reprolint"
               ": disable=SIM0003 -- typo\n    pass\n")
        findings = lint_source(src, SRC)
        assert any(
            f.rule == "PRG001" and "SIM0003" in f.message for f in findings
        )
        # ...and the typo'd pragma silenced nothing.
        assert any(f.rule == "SIM003" for f in findings)

    def test_retired_rule_explains_successor(self):
        src = "x = 1  # reprolint" ": disable=DET001 -- old habit\n"
        (f,) = lint_source(src, SRC)
        assert f.rule == "PRG001"
        assert "retired" in f.message
        assert "SIM003" in f.message

    def test_known_rule_pragma_clean(self):
        src = "x = {1}\nfor i in x:  # reprolint: disable=SIM003 -- justified\n    pass\n"
        assert lint_source(src, SRC) == []

    def test_disable_all_accepted(self):
        src = "x = {1}\nfor i in x:  # reprolint: disable=all\n    pass\n"
        assert lint_source(src, SRC) == []

    def test_file_pragma_validated(self):
        src = "# reprolint" ": disable-file=NOPE\nx = 1\n"
        (f,) = lint_source(src, SRC)
        assert f.rule == "PRG001"
        assert "NOPE" in f.message

    def test_prg001_itself_can_be_silenced(self):
        src = "x = 1  # reprolint: disable=DET001,PRG001 -- migration WIP\n"
        assert lint_source(src, SRC) == []


# ----------------------------------------------------------------------
# --format github
# ----------------------------------------------------------------------


class TestGithubFormat:
    def test_annotations_emitted(self, tmp_path, capsys):
        mod = tmp_path / "src" / "repro" / "sim" / "m.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import time\nt = time.time()\n")
        rc = main([str(mod), "--format", "github"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "::error file=" in out
        assert f"line=2" in out
        assert "title=reprolint SIM001" in out

    def test_clean_tree_no_annotations(self, tmp_path, capsys):
        mod = tmp_path / "clean.py"
        mod.write_text("x = 1\n")
        assert main([str(mod), "--format", "github"]) == 0
        out = capsys.readouterr().out
        assert "::error" not in out
        assert "0 finding(s)" in out


# ----------------------------------------------------------------------
# OBS001: metric naming discipline
# ----------------------------------------------------------------------


class TestOBS001:
    def test_camel_case_metric_name_flagged(self):
        src = "def f(reg):\n    reg.counter('JobsArrived').inc()\n"
        assert "OBS001" in rules_hit(src)

    def test_dashes_flagged(self):
        src = "def f(reg):\n    reg.gauge('dram-used').set(1.0)\n"
        assert "OBS001" in rules_hit(src)

    def test_double_underscore_flagged(self):
        src = "def f(reg):\n    reg.histogram('op__seconds')\n"
        assert "OBS001" in rules_hit(src)

    def test_snake_case_clean(self):
        src = (
            "def f(reg):\n"
            "    reg.counter('jobs_arrived').inc()\n"
            "    reg.gauge('dram_used_bytes').set(1.0)\n"
            "    reg.histogram('op_seconds')\n"
        )
        assert "OBS001" not in rules_hit(src)

    def test_non_literal_name_ignored(self):
        src = "def f(reg, name):\n    reg.counter(name).inc()\n"
        assert "OBS001" not in rules_hit(src)

    def test_exempt_under_tests_and_benchmarks(self):
        src = "def f(reg):\n    reg.counter('BadName').inc()\n"
        assert "OBS001" not in rules_hit(src, path="tests/test_x.py")
        assert "OBS001" not in rules_hit(src, path="benchmarks/bench_x.py")

    def test_pragma_disables(self):
        src = (
            "def f(reg):\n"
            "    reg.counter('BadName').inc()"
            "  # reprolint: disable=OBS001 -- legacy dashboard key\n"
        )
        assert lint_source(src, SRC, ["OBS001"]) == []

    def test_cross_file_kind_collision(self, tmp_path):
        (tmp_path / "a.py").write_text(
            "def f(reg):\n    reg.counter('jobs_done').inc()\n"
        )
        (tmp_path / "b.py").write_text(
            "def g(reg):\n    reg.gauge('jobs_done').set(1.0)\n"
        )
        findings = [
            f for f in lint_paths([str(tmp_path)]) if f.rule == "OBS001"
        ]
        assert len(findings) == 1
        # a.py wins (path order); b.py's gauge is the deviant site.
        assert findings[0].path.endswith("b.py")
        assert "gauge" in findings[0].message
        assert "counter" in findings[0].message

    def test_same_kind_everywhere_is_clean(self, tmp_path):
        for name in ("a.py", "b.py"):
            (tmp_path / name).write_text(
                "def f(reg):\n    reg.counter('jobs_done').inc()\n"
            )
        assert [
            f for f in lint_paths([str(tmp_path)]) if f.rule == "OBS001"
        ] == []

    def test_repo_src_tree_is_clean(self):
        findings = [
            f
            for f in lint_paths([str(REPO / "src")], select=["OBS001"])
            if f.rule == "OBS001"
        ]
        assert findings == []
