"""Per-rule unit tests for reprolint (repro.analysis.lint / .rules)."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.lint import lint_paths, lint_source, main
from repro.analysis.rules import RULES, rules_for_path

REPO = Path(__file__).resolve().parents[2]

#: A src-tree-looking path so no rule is path-exempted.
SRC = "src/repro/sim/something.py"
#: A core path, where DEV001 is live.
CORE = "src/repro/core/something.py"


def rules_hit(source, path=SRC, select=None):
    return sorted({f.rule for f in lint_source(source, path, select)})


# ----------------------------------------------------------------------
# SIM001: wall-clock reads
# ----------------------------------------------------------------------


class TestSIM001:
    def test_time_module_call_flagged(self):
        src = "import time\nt = time.perf_counter()\n"
        (f,) = lint_source(src, SRC, ["SIM001"])
        assert f.rule == "SIM001"
        assert "perf_counter" in f.message
        assert f.line == 2

    def test_aliased_import_flagged(self):
        src = "import time as _t\nx = _t.monotonic()\n"
        assert rules_hit(src, select=["SIM001"]) == ["SIM001"]

    def test_from_import_flagged(self):
        src = "from time import perf_counter\nx = perf_counter()\n"
        assert rules_hit(src, select=["SIM001"]) == ["SIM001"]

    def test_datetime_now_flagged(self):
        src = "from datetime import datetime\nx = datetime.now()\n"
        assert rules_hit(src, select=["SIM001"]) == ["SIM001"]

    def test_simulated_clock_ok(self):
        src = "def f(engine):\n    return engine.now\n"
        assert rules_hit(src, select=["SIM001"]) == []

    def test_time_sleep_ok(self):
        # Only clock *reads* are flagged (sleep is caught by review, not
        # this rule) -- time.sleep is not in the wall-clock read set.
        src = "import time\ntime.sleep(1)\n"
        assert rules_hit(src, select=["SIM001"]) == []

    def test_perf_paths_exempt(self):
        src = "import time\nt = time.perf_counter()\n"
        for path in ("src/repro/perf/profiler.py", "benchmarks/bench_x.py",
                     "tests/test_x.py"):
            assert lint_source(src, path, ["SIM001"]) == []


# ----------------------------------------------------------------------
# SIM002: unseeded RNG
# ----------------------------------------------------------------------


class TestSIM002:
    def test_module_level_random_flagged(self):
        src = "import random\nx = random.random()\n"
        (f,) = lint_source(src, SRC, ["SIM002"])
        assert "seeded" in f.message

    def test_unseeded_random_instance_flagged(self):
        src = "import random\nrng = random.Random()\n"
        assert rules_hit(src, select=["SIM002"]) == ["SIM002"]

    def test_seeded_random_instance_ok(self):
        src = "import random\nrng = random.Random(42)\n"
        assert rules_hit(src, select=["SIM002"]) == []

    def test_np_legacy_global_flagged(self):
        src = "import numpy as np\nx = np.random.rand(3)\n"
        assert rules_hit(src, select=["SIM002"]) == ["SIM002"]

    def test_unseeded_default_rng_flagged(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_hit(src, select=["SIM002"]) == ["SIM002"]

    def test_seeded_default_rng_ok(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert rules_hit(src, select=["SIM002"]) == []

    def test_not_exempt_in_tests(self):
        # Unlike the other rules, SIM002 applies everywhere -- a test
        # with unseeded randomness is a flaky test.
        src = "import random\nx = random.random()\n"
        assert rules_hit(src, path="tests/test_x.py", select=["SIM002"]) == [
            "SIM002"
        ]


# ----------------------------------------------------------------------
# SIM003: unordered iteration
# ----------------------------------------------------------------------


class TestSIM003:
    def test_for_over_set_literal_flagged(self):
        src = "for x in {1, 2, 3}:\n    print(x)\n"
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_for_over_set_variable_flagged(self):
        src = "s = set()\nfor x in s:\n    print(x)\n"
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_sorted_wrapper_ok(self):
        src = "s = set()\nfor x in sorted(s):\n    print(x)\n"
        assert rules_hit(src, select=["SIM003"]) == []

    def test_dict_values_flagged(self):
        src = "d = {}\nxs = [v for v in d.values()]\n"
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_list_of_set_flagged(self):
        src = "s = set()\nxs = list(s)\n"
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_known_set_attribute_flagged(self):
        # fluid.FluidScheduler.active and ._dirty_keys are known sets
        # even through an attribute alias.
        src = "def f(self):\n    keys = self._dirty_keys\n    for k in keys:\n        pass\n"
        assert rules_hit(src, select=["SIM003"]) == ["SIM003"]

    def test_rebinding_clears_tracking(self):
        src = "s = set()\ns = [1, 2]\nfor x in s:\n    pass\n"
        assert rules_hit(src, select=["SIM003"]) == []

    def test_membership_test_ok(self):
        src = "s = set()\nif 3 in s:\n    pass\n"
        assert rules_hit(src, select=["SIM003"]) == []

    def test_building_a_set_ok(self):
        # set comprehension *over* a set: the result is unordered anyway.
        src = "s = set()\nt = {x for x in s}\n"
        assert rules_hit(src, select=["SIM003"]) == []


# ----------------------------------------------------------------------
# SIM004: float equality on simulated time
# ----------------------------------------------------------------------


class TestSIM004:
    def test_eq_on_time_name_flagged(self):
        src = "def f(now, deadline):\n    return now == deadline\n"
        (f,) = lint_source(src, SRC, ["SIM004"])
        assert "time_eq" in f.message

    def test_ne_on_time_suffix_flagged(self):
        src = "def f(op):\n    return op.finished_at != 0.0\n"
        assert rules_hit(src, select=["SIM004"]) == ["SIM004"]

    def test_comparison_with_none_ok(self):
        src = "def f(op):\n    return op.finished_at is None or op.finished_at == None\n"
        assert rules_hit(src, select=["SIM004"]) == []

    def test_ordering_comparisons_ok(self):
        src = "def f(now, deadline):\n    return now <= deadline\n"
        assert rules_hit(src, select=["SIM004"]) == []

    def test_non_time_names_ok(self):
        src = "def f(count, total):\n    return count == total\n"
        assert rules_hit(src, select=["SIM004"]) == []


# ----------------------------------------------------------------------
# DEV001: uncharged byte moves in core/ and baselines/
# ----------------------------------------------------------------------


class TestDEV001:
    def test_peek_in_core_flagged(self):
        src = "def f(input_file):\n    return input_file.peek()\n"
        (f,) = lint_source(src, CORE, ["DEV001"])
        assert "peek" in f.message

    def test_poke_in_baselines_flagged(self):
        src = "def f(out):\n    out.poke(0, b'x')\n"
        path = "src/repro/baselines/x.py"
        assert rules_hit(src, path=path, select=["DEV001"]) == ["DEV001"]

    def test_data_attribute_in_core_flagged(self):
        src = "def f(f2):\n    return f2._data[0]\n"
        assert rules_hit(src, path=CORE, select=["DEV001"]) == ["DEV001"]

    def test_inactive_outside_core(self):
        src = "def f(input_file):\n    return input_file.peek()\n"
        assert rules_hit(src, path=SRC, select=["DEV001"]) == []

    def test_tests_exempt(self):
        src = "def f(input_file):\n    return input_file.peek()\n"
        path = "tests/core/test_x.py"
        assert rules_hit(src, path=path, select=["DEV001"]) == []

    def test_timed_apis_ok(self):
        src = "def f(input_file):\n    yield input_file.read(0, 10, tag='RUN read')\n"
        assert rules_hit(src, path=CORE, select=["DEV001"]) == []


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------


class TestPragmas:
    def test_line_disable(self):
        src = "import time\nt = time.perf_counter()  # reprolint: disable=SIM001 -- justified\n"
        assert lint_source(src, SRC, ["SIM001"]) == []

    def test_line_disable_wrong_rule_keeps_finding(self):
        src = "import time\nt = time.perf_counter()  # reprolint: disable=SIM002\n"
        assert rules_hit(src, select=["SIM001"]) == ["SIM001"]

    def test_disable_all(self):
        src = "import time\nt = time.perf_counter()  # reprolint: disable=all\n"
        assert lint_source(src, SRC) == []

    def test_file_disable(self):
        src = (
            "# reprolint: disable-file=SIM001\n"
            "import time\n"
            "a = time.perf_counter()\n"
            "b = time.monotonic()\n"
        )
        assert lint_source(src, SRC, ["SIM001"]) == []

    def test_multiple_rules_one_pragma(self):
        src = (
            "import time, random\n"
            "x = [time.perf_counter(), random.random()]  "
            "# reprolint: disable=SIM001,SIM002\n"
        )
        assert lint_source(src, SRC, ["SIM001", "SIM002"]) == []


# ----------------------------------------------------------------------
# Driver behaviour
# ----------------------------------------------------------------------


class TestDriver:
    def test_select_unknown_rule_raises(self):
        with pytest.raises(ValueError):
            rules_for_path(SRC, ["SIM999"])

    def test_rules_registry_complete(self):
        assert set(RULES) == {"SIM001", "SIM002", "SIM003", "SIM004", "DEV001"}

    def test_syntax_error_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        findings = lint_paths([str(bad)])
        assert len(findings) == 1
        assert findings[0].rule == "E999"

    def test_json_output(self, tmp_path, capsys):
        mod = tmp_path / "src" / "repro" / "sim" / "m.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import time\nt = time.time()\n")
        rc = main([str(mod), "--format", "json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert out["files_checked"] == 1
        assert out["findings"][0]["rule"] == "SIM001"
        assert out["summary"]["total"] == 1

    def test_clean_file_exit_zero(self, tmp_path, capsys):
        mod = tmp_path / "clean.py"
        mod.write_text("x = 1\n")
        assert main([str(mod)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_no_paths_usage_error(self, capsys):
        assert main([]) == 2
        capsys.readouterr()

    def test_repo_src_tree_is_clean(self):
        """The acceptance gate: the shipped tree lints clean."""
        findings = lint_paths([str(REPO / "src" / "repro")])
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_module_entrypoint_runs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis.lint", "--list-rules"],
            capture_output=True,
            text=True,
            cwd=str(REPO),
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0
        assert "SIM001" in proc.stdout
