"""simrace: sim-time race detection over the coroutine engine.

The fixtures here are the acceptance bed for ``--race-detect``: the
intentional races MUST stay flagged (a silently quiet detector is a CI
failure), the happens-before fixtures MUST stay quiet, and the detector
must never perturb simulated results.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.race import RaceDetector, sort_output_fingerprint
from repro.errors import RaceError
from repro.machine import Machine
from repro.sim.engine import Join, Sleep, Spawn
from repro.sim.primitives import Barrier, Semaphore, SimQueue


def _machine_with_file(nbytes=4096, name="hot"):
    m = Machine()
    det = m.install_race_detector()
    f = m.fs.create(name)
    f.poke(0, b"\x00" * nbytes)
    return m, det, f


def _spawn_pair(m, gen_a, gen_b, name_a="a", name_b="b"):
    def main():
        pa = yield Spawn(gen_a, name=name_a)
        pb = yield Spawn(gen_b, name=name_b)
        yield Join([pa, pb])

    m.run(main(), name="main")


class TestIntentionalRaces:
    def test_ww_overlap_flagged_with_diagnostics(self):
        m, det, f = _machine_with_file()

        def writer(lo):
            yield f.write(lo, b"\xff" * 256, tag="W")

        _spawn_pair(m, writer(0), writer(128), "writer-a", "writer-b")
        assert len(det.races) == 1
        r = det.races[0]
        assert {r.a_name, r.b_name} == {"writer-a", "writer-b"}
        assert r.file_name == "hot"
        assert r.a_kind == "w" and r.b_kind == "w"
        assert r.overlaps == [(128, 256)]
        text = det.render()
        assert "WW conflict" in text
        assert "'hot'" in text
        assert "[128, 256)" in text
        assert "writer-a" in text and "writer-b" in text
        with pytest.raises(RaceError):
            det.check()

    def test_rw_overlap_flagged(self):
        m, det, f = _machine_with_file()

        def writer():
            yield f.write(0, b"\xff" * 256, tag="W")

        def reader():
            yield f.read(100, 64, tag="R")

        _spawn_pair(m, writer(), reader())
        assert len(det.races) == 1
        kinds = {det.races[0].a_kind, det.races[0].b_kind}
        assert kinds == {"r", "w"}

    def test_gather_read_vs_write_flagged(self):
        m, det, f = _machine_with_file()

        def writer():
            yield f.write(200, b"\xff" * 16, tag="W")

        def gatherer():
            yield f.read_gather([0, 208, 400], 8, tag="G")

        _spawn_pair(m, writer(), gatherer())
        assert len(det.races) == 1
        assert det.races[0].overlaps == [(208, 216)]

    def test_strided_read_vs_write_flagged(self):
        m, det, f = _machine_with_file()

        def writer():
            yield f.write(100, b"\xff" * 8, tag="W")

        def strider():
            yield f.read_strided(0, 4, 100, 10, tag="S")

        _spawn_pair(m, writer(), strider())
        assert len(det.races) == 1

    def test_duplicate_pairs_deduplicated(self):
        m, det, f = _machine_with_file()

        def writer(lo):
            yield f.write(lo, b"\xff" * 64, tag="W")
            yield f.write(lo, b"\xee" * 64, tag="W")

        _spawn_pair(m, writer(0), writer(32))
        assert len(det.races) == 1  # one report per (file, pid, pid) pair


class TestNoFalsePositives:
    def test_read_read_overlap_ok(self):
        m, det, f = _machine_with_file()

        def reader():
            yield f.read(0, 256, tag="R")

        _spawn_pair(m, reader(), reader())
        assert det.races == []
        assert det.pairs_checked == 0  # r/r pairs are skipped outright

    def test_disjoint_ranges_ok(self):
        m, det, f = _machine_with_file()

        def writer(lo):
            yield f.write(lo, b"\xff" * 128, tag="W")

        _spawn_pair(m, writer(0), writer(128))
        assert det.races == []

    def test_different_instants_ok(self):
        m, det, f = _machine_with_file()

        def early():
            yield f.write(0, b"\xff" * 256, tag="W")

        def late():
            yield Sleep(1e-6)
            yield f.write(0, b"\xee" * 256, tag="W")

        _spawn_pair(m, early(), late())
        assert det.races == []

    def test_different_files_ok(self):
        m, det, f = _machine_with_file()
        g = m.fs.create("other")
        g.poke(0, b"\x00" * 4096)

        def wa():
            yield f.write(0, b"\xff" * 256, tag="W")

        def wb():
            yield g.write(0, b"\xee" * 256, tag="W")

        _spawn_pair(m, wa(), wb())
        assert det.races == []

    def test_same_coroutine_sequential_ok(self):
        m, det, f = _machine_with_file()

        def seq():
            yield f.write(0, b"\xff" * 256, tag="W")
            yield f.write(128, b"\xee" * 256, tag="W")

        m.run(seq(), name="seq")
        assert det.races == []


class TestHappensBefore:
    """Each edge of the HB relation suppresses one would-be race."""

    def test_spawn_edge(self):
        m, det, f = _machine_with_file()

        def child():
            yield f.write(0, b"\x01" * 64, tag="W")

        def parent():
            yield f.write(0, b"\x02" * 64, tag="W")
            c = yield Spawn(child(), name="child")
            yield Join(c)

        m.run(parent(), name="parent")
        assert det.races == []

    def test_join_edge(self):
        m, det, f = _machine_with_file()

        def child():
            yield f.write(0, b"\x01" * 64, tag="W")

        def parent():
            c = yield Spawn(child(), name="child")
            yield Join(c)
            yield f.write(0, b"\x02" * 64, tag="W")

        m.run(parent(), name="parent")
        assert det.races == []

    def test_semaphore_edge(self):
        m, det, f = _machine_with_file()
        sem = Semaphore(m.engine, count=0, name="gate")

        def first():
            op = f.write(0, b"\x01" * 256, tag="W")  # logged now, under us
            sem.release()  # our clock flows into the gate
            yield op

        def second():
            yield sem.acquire()  # inherits first's clock
            yield f.write(128, b"\x02" * 256, tag="W")

        _spawn_pair(m, first(), second(), "first", "second")
        assert det.races == []

    def test_semaphore_control_races_without_edge(self):
        # The same shape minus the semaphore IS a race -- proves the
        # suppression above comes from the edge, not the timing.
        m, det, f = _machine_with_file()

        def first():
            yield f.write(0, b"\x01" * 256, tag="W")

        def second():
            yield f.write(128, b"\x02" * 256, tag="W")

        _spawn_pair(m, first(), second(), "first", "second")
        assert len(det.races) == 1

    def test_queue_edge(self):
        m, det, f = _machine_with_file()
        q = SimQueue(m.engine, name="handoff")

        def producer():
            op = f.write(0, b"\x01" * 256, tag="W")
            yield q.put("token")  # producer clock flows into the queue
            yield op

        def consumer():
            yield q.get()  # inherits the producer's clock with the item
            yield f.write(128, b"\x02" * 256, tag="W")

        _spawn_pair(m, producer(), consumer(), "producer", "consumer")
        assert det.races == []

    def test_barrier_edge(self):
        m, det, f = _machine_with_file()
        bar = Barrier(m.engine, parties=2, name="sync")

        def first():
            op = f.write(0, b"\x01" * 256, tag="W")
            yield bar.wait()
            yield op

        def second():
            yield bar.wait()  # all-to-all: inherits every arriver's clock
            yield f.write(128, b"\x02" * 256, tag="W")

        _spawn_pair(m, first(), second(), "first", "second")
        assert det.races == []


class TestObserveOnly:
    def test_sort_bit_identical_with_detector(self):
        from repro.api import RunOptions, sort

        opts = RunOptions(records=8_000, system="wiscsort-merge")
        base = sort(opts)
        observed = sort(opts.replace(race_detect=True))
        assert sort_output_fingerprint(observed) == sort_output_fingerprint(
            base
        )
        det = observed.extras["race_detector"]
        assert det.races == []
        assert det.accesses_seen > 0
        det.check()  # clean workload: must not raise

    def test_simulated_times_identical_with_detector(self):
        from repro.api import RunOptions, sort

        opts = RunOptions(records=8_000, system="wiscsort-merge")
        base = sort(opts)
        observed = sort(opts.replace(race_detect=True))
        assert observed.total_time == base.total_time


class TestLifecycle:
    def test_reboot_keeps_detector_and_races(self):
        m, det, f = _machine_with_file()

        def writer(lo):
            yield f.write(lo, b"\xff" * 256, tag="W")

        _spawn_pair(m, writer(0), writer(128))
        assert len(det.races) == 1
        m.reboot()
        assert m.engine.race is det  # re-attached to the fresh engine
        assert m.fs.race is det  # storage hook survives (durable layer)
        assert len(det.races) == 1  # findings survive the crash

        # And the detector still works after the reboot.
        def wr2(lo):
            yield f.write(lo, b"\xaa" * 64, tag="W")

        _spawn_pair(m, wr2(0), wr2(32))
        assert len(det.races) == 2

    def test_cancelled_coroutine_clock_retired(self):
        m, det, f = _machine_with_file()

        def sleeper():
            yield f.write(0, b"\x01" * 64, tag="W")
            yield Sleep(10.0)

        def parent():
            c = yield Spawn(sleeper(), name="sleeper")
            yield Sleep(1e-6)
            m.engine.cancel_tree(c)

        m.run(parent(), name="parent")
        # The cancelled pid's live clock moved to the final-clock table,
        # exactly like a StopIteration finish would have.
        assert det._clocks == {} or all(
            pid in det._final_clocks for pid in list(det._clocks)
        )
        assert any(det._final_clocks)

    def test_render_clean_summary(self):
        m, det, f = _machine_with_file()

        def seq():
            yield f.write(0, b"\xff" * 64, tag="W")

        m.run(seq(), name="seq")
        out = det.render()
        assert "no conflicting" in out
        det.check()


class TestClusterRace:
    def test_cross_shard_files_do_not_alias(self):
        from repro.cluster import Cluster

        cluster = Cluster(shards=2)
        det = cluster.install_race_detector()
        fa = cluster.shards[0].fs.create("part")
        fb = cluster.shards[1].fs.create("part")  # same name, other shard
        fa.poke(0, b"\x00" * 1024)
        fb.poke(0, b"\x00" * 1024)

        def wa():
            yield fa.write(0, b"\x01" * 256, tag="W")

        def wb():
            yield fb.write(0, b"\x02" * 256, tag="W")

        def main():
            pa = yield Spawn(wa(), name="a")
            pb = yield Spawn(wb(), name="b")
            yield Join([pa, pb])

        cluster.run(main())
        # Same name on different shards is different storage: no race.
        assert det.races == []

    def test_shared_shard_file_races(self):
        from repro.cluster import Cluster

        cluster = Cluster(shards=2)
        det = cluster.install_race_detector()
        f = cluster.shards[0].fs.create("shared")
        f.poke(0, b"\x00" * 1024)

        def w(lo):
            yield f.write(lo, b"\x01" * 256, tag="W")

        def main():
            pa = yield Spawn(w(0), name="a")
            pb = yield Spawn(w(128), name="b")
            yield Join([pa, pb])

        cluster.run(main())
        assert len(det.races) == 1
