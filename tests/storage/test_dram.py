"""Tests for DRAM budget accounting."""

from __future__ import annotations

import pytest

from repro.errors import DramBudgetError
from repro.storage.dram import DramTracker


class TestUnbounded:
    def test_no_budget_allows_anything(self):
        dram = DramTracker()
        dram.allocate(1 << 50)
        assert dram.available is None
        assert dram.would_fit(1 << 50)


class TestBudgeted:
    def test_allocate_and_free(self):
        dram = DramTracker(budget=100)
        dram.allocate(60)
        assert dram.available == 40
        dram.free(60)
        assert dram.available == 100

    def test_peak_tracked(self):
        dram = DramTracker(budget=100)
        dram.allocate(70)
        dram.free(50)
        dram.allocate(10)
        assert dram.peak == 70

    def test_over_allocation_rejected(self):
        dram = DramTracker(budget=100)
        dram.allocate(90)
        with pytest.raises(DramBudgetError):
            dram.allocate(20)

    def test_would_fit(self):
        dram = DramTracker(budget=100)
        dram.allocate(50)
        assert dram.would_fit(50)
        assert not dram.would_fit(51)

    def test_free_more_than_used_rejected(self):
        dram = DramTracker(budget=100)
        dram.allocate(10)
        with pytest.raises(DramBudgetError):
            dram.free(20)

    def test_negative_allocation_rejected(self):
        dram = DramTracker(budget=100)
        with pytest.raises(DramBudgetError):
            dram.allocate(-1)

    def test_zero_budget_rejected(self):
        with pytest.raises(DramBudgetError):
            DramTracker(budget=0)

    def test_reserve_frees_on_exception(self):
        dram = DramTracker(budget=100)
        with pytest.raises(RuntimeError):
            with dram.reserve(80):
                assert dram.used == 80
                raise RuntimeError("boom")
        assert dram.used == 0
