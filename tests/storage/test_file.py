"""Tests for simulated files: data correctness plus timing accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FileExistsInSimError, FileNotFoundInSimError, OutOfSpaceError, StorageError
from repro.machine import Machine
from repro.device.profiles import pmem_profile


def run_op(machine, op):
    """Yield a single op from a throwaway process; return its result."""
    def job():
        return (yield op)

    return machine.run(job())


class TestReadWrite:
    def test_write_then_read_roundtrip(self, machine):
        f = machine.fs.create("f")
        payload = np.arange(1000, dtype=np.uint8) % 251
        run_op(machine, f.write(0, payload, tag="w"))
        data = run_op(machine, f.read(0, 1000, tag="r"))
        assert np.array_equal(data, payload)

    def test_write_at_offset_extends_file(self, machine):
        f = machine.fs.create("f")
        run_op(machine, f.write(500, b"abc", tag="w"))
        assert f.size == 503
        assert bytes(f.peek(500, 3)) == b"abc"

    def test_append_goes_to_end(self, machine):
        f = machine.fs.create("f")
        run_op(machine, f.append(b"aaa", tag="w"))
        run_op(machine, f.append(b"bbb", tag="w"))
        assert bytes(f.peek()) == b"aaabbb"

    def test_read_beyond_eof_raises(self, machine):
        f = machine.fs.create("f")
        f.poke(0, b"xyz")
        with pytest.raises(StorageError):
            f.read(0, 10, tag="r")

    def test_read_charges_time(self, machine):
        f = machine.fs.create("f")
        f.poke(0, np.zeros(1 << 20, dtype=np.uint8))
        run_op(machine, f.read(0, 1 << 20, tag="r", threads=16))
        assert machine.now > 0

    def test_reads_return_copies(self, machine):
        f = machine.fs.create("f")
        f.poke(0, b"abc")
        data = run_op(machine, f.read(0, 3, tag="r"))
        data[0] = 0
        assert bytes(f.peek(0, 3)) == b"abc"


class TestStrided:
    def test_strided_gathers_fields(self, machine):
        f = machine.fs.create("f")
        records = (np.arange(50 * 10) % 256).astype(np.uint8).reshape(50, 10)
        f.poke(0, records.reshape(-1))
        keys = run_op(
            machine,
            f.read_strided(0, 50, stride=10, access_size=3, tag="r"),
        )
        assert keys.shape == (50, 3)
        assert np.array_equal(keys, records[:, :3])

    def test_strided_with_offset(self, machine):
        f = machine.fs.create("f")
        f.poke(0, np.arange(100, dtype=np.uint8))
        rows = run_op(
            machine, f.read_strided(10, 3, stride=20, access_size=2, tag="r")
        )
        assert rows.tolist() == [[10, 11], [30, 31], [50, 51]]

    def test_strided_zero_count(self, machine):
        f = machine.fs.create("f")
        rows = run_op(
            machine, f.read_strided(0, 0, stride=10, access_size=2, tag="r")
        )
        assert rows.shape == (0, 2)

    def test_stride_smaller_than_access_rejected(self, machine):
        f = machine.fs.create("f")
        f.poke(0, np.zeros(100, dtype=np.uint8))
        with pytest.raises(StorageError):
            f.read_strided(0, 5, stride=2, access_size=5, tag="r")

    def test_strided_past_eof_rejected(self, machine):
        f = machine.fs.create("f")
        f.poke(0, np.zeros(50, dtype=np.uint8))
        with pytest.raises(StorageError):
            f.read_strided(0, 10, stride=10, access_size=5, tag="r")


class TestGather:
    def test_gather_returns_requested_order(self, machine):
        f = machine.fs.create("f")
        f.poke(0, np.arange(100, dtype=np.uint8))
        rows = run_op(machine, f.read_gather([30, 0, 60], 4, tag="r"))
        assert rows.tolist() == [
            [30, 31, 32, 33],
            [0, 1, 2, 3],
            [60, 61, 62, 63],
        ]

    def test_gather_empty(self, machine):
        f = machine.fs.create("f")
        rows = run_op(machine, f.read_gather([], 4, tag="r"))
        assert rows.shape == (0, 4)

    def test_gather_out_of_bounds_rejected(self, machine):
        f = machine.fs.create("f")
        f.poke(0, np.zeros(10, dtype=np.uint8))
        with pytest.raises(StorageError):
            f.read_gather([8], 4, tag="r")

    def test_gather_var_concatenates_in_order(self, machine):
        f = machine.fs.create("f")
        f.poke(0, np.arange(100, dtype=np.uint8))
        flat = run_op(
            machine, f.read_gather_var([10, 50], [2, 3], tag="r")
        )
        assert flat.tolist() == [10, 11, 50, 51, 52]

    def test_gather_var_shape_mismatch_rejected(self, machine):
        f = machine.fs.create("f")
        f.poke(0, np.zeros(10, dtype=np.uint8))
        with pytest.raises(StorageError):
            f.read_gather_var([0, 1], [1], tag="r")

    def test_gather_var_empty(self, machine):
        f = machine.fs.create("f")
        flat = run_op(machine, f.read_gather_var([], [], tag="r"))
        assert flat.size == 0


class TestFilesystem:
    def test_create_open_delete(self, machine):
        machine.fs.create("a")
        assert machine.fs.exists("a")
        assert machine.fs.open("a").name == "a"
        machine.fs.delete("a")
        assert not machine.fs.exists("a")

    def test_duplicate_create_rejected(self, machine):
        machine.fs.create("a")
        with pytest.raises(FileExistsInSimError):
            machine.fs.create("a")

    def test_missing_open_rejected(self, machine):
        with pytest.raises(FileNotFoundInSimError):
            machine.fs.open("nope")

    def test_missing_delete_rejected(self, machine):
        with pytest.raises(FileNotFoundInSimError):
            machine.fs.delete("nope")

    def test_capacity_accounting(self, machine):
        f = machine.fs.create("a")
        f.poke(0, np.zeros(1000, dtype=np.uint8))
        assert machine.fs.used == 1000
        machine.fs.delete("a")
        assert machine.fs.used == 0

    def test_overwrite_does_not_double_count(self, machine):
        f = machine.fs.create("a")
        f.poke(0, np.zeros(1000, dtype=np.uint8))
        f.poke(0, np.ones(1000, dtype=np.uint8))
        assert machine.fs.used == 1000

    def test_out_of_space(self):
        profile = pmem_profile(capacity=1000)
        machine = Machine(profile=profile)
        f = machine.fs.create("a")
        with pytest.raises(OutOfSpaceError):
            f.poke(0, np.zeros(2000, dtype=np.uint8))

    def test_out_of_space_reports_requested_vs_available(self):
        """Regression: ENOSPC must say how far over budget the request was."""
        profile = pmem_profile(capacity=1000)
        machine = Machine(profile=profile)
        f = machine.fs.create("a")
        f.poke(0, np.zeros(600, dtype=np.uint8))
        with pytest.raises(OutOfSpaceError) as exc_info:
            f.poke(600, np.zeros(700, dtype=np.uint8))
        err = exc_info.value
        assert err.requested == 700
        assert err.available == 400
        assert not err.transient
        assert "700" in str(err) and "400" in str(err)
        # the failed grow charged nothing
        assert machine.fs.used == 600

    def test_out_of_space_after_delete_frees_capacity(self):
        profile = pmem_profile(capacity=1000)
        machine = Machine(profile=profile)
        f = machine.fs.create("a")
        f.poke(0, np.zeros(800, dtype=np.uint8))
        machine.fs.delete("a")
        g = machine.fs.create("b")
        g.poke(0, np.zeros(900, dtype=np.uint8))
        assert machine.fs.used == 900

    def test_list_is_sorted(self, machine):
        for name in ("c", "a", "b"):
            machine.fs.create(name)
        assert machine.fs.list() == ["a", "b", "c"]
