"""Determinism guards and self-performance instrumentation tests.

The kernel optimisations (rate-model memoization, op batching, the
frontier merge loop) are only admissible if they do not change simulated
results.  These tests pin that down end-to-end on a WiscSort MergePass
workload, and exercise the ``repro.perf`` profiler / counters.
"""

from __future__ import annotations

import pytest

from repro.core.base import SortConfig
from repro.core.wiscsort import WiscSort
from repro.machine import Machine
from repro.perf import SelfPerfProfiler, collect_counters, render_report
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.units import KiB
from repro.workloads.background import BackgroundClients

RECORDS = 30_000


def run_mergepass(memoize_rates=True, batch_ops=False, background=0):
    machine = Machine(memoize_rates=memoize_rates, batch_ops=batch_ops)
    fmt = RecordFormat()
    data = generate_dataset(machine, "input", RECORDS, fmt, seed=7)
    if background:
        BackgroundClients(machine, background, "write").start()
    cfg = SortConfig(read_buffer=96 * KiB, write_buffer=8 * KiB)
    system = WiscSort(
        fmt, config=cfg, force_merge_pass=True, merge_chunk_entries=1_000
    )
    result = system.run(machine, data, validate=False)
    output = machine.fs.open(result.output_name).peek().tobytes()
    return machine, result, output


def stats_snapshot(machine):
    return {
        tag: (s.busy_time, s.internal_bytes, s.user_bytes, s.op_count)
        for tag, s in machine.stats.tags.items()
    }


class TestMemoizationDeterminism:
    def test_memoize_on_off_identical_results(self):
        # The memo canonicalises op order before the waterfill, so the
        # cached and uncached paths must agree bit-for-bit: identical
        # completion times, identical interval timeline, identical
        # DeviceStats -- not merely approximately equal.
        m_on, r_on, out_on = run_mergepass(memoize_rates=True)
        m_off, r_off, out_off = run_mergepass(memoize_rates=False)
        assert m_on.rate_model.cache_hits > 0
        assert m_off.rate_model.cache_hits == 0
        assert r_on.total_time == r_off.total_time
        assert out_on == out_off
        assert m_on.stats.timeline == m_off.stats.timeline
        assert stats_snapshot(m_on) == stats_snapshot(m_off)
        assert float(r_on.internal_read) == float(r_off.internal_read)
        assert float(r_on.internal_written) == float(r_off.internal_written)

    def test_memoize_hit_rate_on_steady_state_mergepass(self):
        # Acceptance criterion: the rate-model memo must be observably
        # effective -- >= 80% hit rate on a steady-state MergePass.
        machine, _result, _out = run_mergepass(background=2)
        counters = collect_counters(machine)
        assert counters["rate_cache_hit_rate"] >= 0.8


class TestBatchingEquivalence:
    def test_batch_ops_equivalent_results(self):
        # Coalescing homogeneous parallel ops changes float summation
        # order, so times are equivalent to ~1e-9 relative rather than
        # bit-identical; data results must match exactly.
        m_plain, r_plain, out_plain = run_mergepass(batch_ops=False)
        m_batch, r_batch, out_batch = run_mergepass(batch_ops=True)
        assert m_batch.engine.batched_ops > 0
        assert m_plain.engine.batched_ops == 0
        assert out_plain == out_batch
        assert r_batch.total_time == pytest.approx(r_plain.total_time, rel=1e-9)
        for tag, (busy, internal, user, ops) in stats_snapshot(m_plain).items():
            busy_b, internal_b, user_b, _ops_b = stats_snapshot(m_batch)[tag]
            assert busy_b == pytest.approx(busy, rel=1e-9, abs=1e-15)
            assert internal_b == pytest.approx(internal, rel=1e-9, abs=1e-6)
            assert user_b == user


class TestPerfInstrumentation:
    def test_collect_counters_keys_and_consistency(self):
        machine, result, _out = run_mergepass()
        c = collect_counters(machine)
        assert c["sim_seconds"] == pytest.approx(result.total_time)
        assert c["ops_added"] == c["ops_completed"]
        assert c["engine_steps"] > 0
        assert c["clock_advances"] > 0
        assert c["intervals_observed"] == len(machine.stats.timeline)
        hits, misses = c["rate_cache_hits"], c["rate_cache_misses"]
        assert c["rate_cache_hit_rate"] == pytest.approx(hits / (hits + misses))

    def test_profiler_phases_accumulate_and_render(self):
        machine, _result, _out = run_mergepass()
        prof = SelfPerfProfiler()
        with prof.phase("a"):
            pass
        with prof.phase("b"):
            pass
        with prof.phase("a"):
            pass
        assert list(prof.phases) == ["a", "b"]
        assert prof.total_wall >= 0.0
        report = render_report(machine, prof)
        assert "simulator self-performance" in report
        assert "rate memo" in report
        assert "throughput" in report

    def test_profiler_nested_same_name_counts_once(self, monkeypatch):
        # Regression: re-entering an open phase name used to double-count
        # the overlapped wall time.  With a fake clock that advances 1.0
        # per reading, the old code charged (inner) 1.0 + (outer) 3.0;
        # nesting-safe accounting charges the outermost elapsed once.
        import repro.perf.profiler as profiler_mod

        class FakeTime:
            def __init__(self):
                self.t = 0.0

            def perf_counter(self):
                self.t += 1.0
                return self.t

        monkeypatch.setattr(profiler_mod, "time", FakeTime())
        prof = SelfPerfProfiler()
        with prof.phase("a"):
            with prof.phase("a"):
                pass
        assert prof.phases["a"] == 1.0
        # Non-nested re-entry still accumulates, and first-entry order
        # is preserved.
        with prof.phase("b"):
            pass
        with prof.phase("a"):
            pass
        assert list(prof.phases) == ["a", "b"]
        assert prof.phases["a"] == 2.0

    def test_cli_selfperf_flag(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "sort",
                "--records",
                "5000",
                "--system",
                "wiscsort",
                "--no-validate",
                "--selfperf",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "simulator self-performance" in out
        assert "rate memo" in out

    def test_cli_no_memoize_flag_disables_cache(self, capsys):
        from repro.cli import main

        rc = main(
            [
                "sort",
                "--records",
                "5000",
                "--system",
                "wiscsort",
                "--no-validate",
                "--selfperf",
                "--no-memoize",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "disabled / unused" in out
