"""On conventional block storage, bundling values with keys wins.

Sec 2.4.2: on HDD/SSD "moving values with keys is advantageous" --
random reads amplify 40x (4 KB blocks vs 100 B records), so a
WiscSort-style design that relies on random value gathers must lose to
classic external merge sort.  These tests pin that inversion, which is
the whole motivation for making the sort device-aware.
"""

from __future__ import annotations

import pytest

from repro.baselines import ExternalMergeSort
from repro.core.wiscsort import WiscSort
from repro.device.profile import Pattern
from repro.device.profiles import block_ssd_profile
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset


@pytest.fixture(scope="module")
def ssd():
    return block_ssd_profile()


def run(profile, system, n=20_000, seed=2):
    machine = Machine(profile=profile)
    f = generate_dataset(machine, "input", n, RecordFormat(), seed=seed)
    result = system.run(machine, f, validate=False)
    return machine, result


class TestBlockDeviceInversion:
    def test_ems_beats_wiscsort_on_block_ssd(self, ssd):
        fmt = RecordFormat()
        _, ems = run(ssd, ExternalMergeSort(fmt))
        _, wisc = run(ssd, WiscSort(fmt))
        assert ems.total_time < wisc.total_time

    def test_wiscsort_beats_ems_on_pmem_same_workload(self, pmem, ssd):
        # The same workload, the opposite winner: device properties
        # decide the design (the paper's core thesis).
        fmt = RecordFormat()
        _, ems_pm = run(pmem, ExternalMergeSort(fmt))
        _, wisc_pm = run(pmem, WiscSort(fmt))
        assert wisc_pm.total_time < ems_pm.total_time

    def test_random_read_amplification_is_blockwise(self, ssd):
        # The GraySort example: a 100B random read costs a 4KB block.
        work = ssd.io_work(Pattern.RAND, 100, accesses=1)
        assert work / 100 >= 40

    def test_wiscsort_gather_traffic_explodes_on_ssd(self, ssd, pmem):
        fmt = RecordFormat()
        machine_ssd, _ = run(ssd, WiscSort(fmt))
        machine_pm, _ = run(pmem, WiscSort(fmt))
        gather_ssd = machine_ssd.stats.tags["RECORD read"].internal_bytes
        gather_pm = machine_pm.stats.tags["RECORD read"].internal_bytes
        # Same user bytes, vastly more internal traffic on the SSD.
        assert gather_ssd > 10 * gather_pm
