"""Integration tests asserting the paper's qualitative results.

These run the real systems at reduced scale and check *who wins and by
roughly what factor* -- the contract of the reproduction.  The full-size
versions live in ``benchmarks/``.
"""

from __future__ import annotations

import pytest

from repro.baselines import ExternalMergeSort, PMSort, PMSortPlus, SampleSort
from repro.core.base import ConcurrencyModel, SortConfig
from repro.core.wiscsort import WiscSort
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset

N = 50_000  # 5 MB sortbenchmark input


@pytest.fixture(scope="module")
def fmt():
    return RecordFormat()


def run(profile, system, n=N, fmt_=None, seed=11):
    machine = Machine(profile=profile)
    f = generate_dataset(machine, "input", n, fmt_ or RecordFormat(), seed=seed)
    return system.run(machine, f, validate=False)


@pytest.fixture(scope="module")
def pmem_results(fmt):
    from tests.conftest import _PMEM as pmem

    chunk = N // 4
    # Buffers sized so every phase runs over many batches even at this
    # reduced scale (a 5 MiB write buffer would hold the whole input in
    # one batch and erase the difference between concurrency models).
    small = 512 * 1024

    def cfg(model):
        return SortConfig(
            concurrency=model, read_buffer=2 * small, write_buffer=small
        )

    return {
        "ems": run(pmem, ExternalMergeSort(
            fmt, config=cfg(ConcurrencyModel.NO_IO_OVERLAP))),
        "ems-nosync": run(pmem, ExternalMergeSort(
            fmt, config=cfg(ConcurrencyModel.NO_SYNC))),
        "onepass": run(pmem, WiscSort(
            fmt, config=cfg(ConcurrencyModel.NO_IO_OVERLAP))),
        "onepass-overlap": run(pmem, WiscSort(
            fmt, config=cfg(ConcurrencyModel.IO_OVERLAP))),
        "onepass-nosync": run(pmem, WiscSort(
            fmt, config=cfg(ConcurrencyModel.NO_SYNC))),
        "mergepass": run(pmem, WiscSort(
            fmt, force_merge_pass=True, merge_chunk_entries=chunk)),
        "sample": run(pmem, SampleSort(fmt)),
        "pmsort": run(pmem, PMSort(fmt)),
        "pmsort+": run(pmem, PMSortPlus(fmt)),
    }


class TestHeadlineResults:
    def test_wiscsort_beats_ems(self, pmem_results):
        # Abstract: "2x-3x better than concurrent external merge sort".
        speedup = pmem_results["ems"].total_time / pmem_results["onepass"].total_time
        assert 1.7 <= speedup <= 4.0

    def test_mergepass_beats_ems(self, pmem_results):
        speedup = pmem_results["ems"].total_time / pmem_results["mergepass"].total_time
        assert 1.3 <= speedup <= 3.0

    def test_onepass_beats_mergepass(self, pmem_results):
        assert (
            pmem_results["onepass"].total_time
            < pmem_results["mergepass"].total_time
        )

    def test_ems_beats_inplace_sample_sort(self, pmem_results):
        # Fig 1: EMS ~2x faster than in-place sample sort on PMEM.
        ratio = pmem_results["sample"].total_time / pmem_results["ems"].total_time
        assert 1.3 <= ratio <= 3.0

    def test_wiscsort_much_faster_than_pmsort(self, pmem_results):
        # Abstract: "7x better than recent PM based sorting (PMSort)".
        ratio = pmem_results["pmsort"].total_time / pmem_results["onepass"].total_time
        assert ratio >= 4.0

    def test_interference_aware_scheduling_wins(self, pmem_results):
        # Fig 7 family ordering: no-io-overlap < io-overlap < no-sync.
        assert (
            pmem_results["onepass"].total_time
            < pmem_results["onepass-overlap"].total_time
            < pmem_results["onepass-nosync"].total_time
        )

    def test_controlled_ems_beats_nosync_ems(self, pmem_results):
        assert (
            pmem_results["ems"].total_time
            < pmem_results["ems-nosync"].total_time
        )

    def test_pmsort_plus_between_pmsort_and_wiscsort(self, pmem_results):
        assert (
            pmem_results["onepass"].total_time
            < pmem_results["pmsort+"].total_time
            < pmem_results["pmsort"].total_time
        )


class TestTrafficReduction:
    def test_wiscsort_writes_half_of_ems(self, pmem_results):
        # Sec 3.3: OnePass avoids all intermediate writes.
        assert pmem_results["onepass"].user_written == pytest.approx(
            pmem_results["ems"].user_written / 2, rel=0.02
        )

    def test_wiscsort_reads_less_user_data(self, pmem_results):
        # OnePass reads keys once (10%) + values once (100%) vs EMS's
        # two full passes: a ~45% reduction in user read traffic.
        assert (
            pmem_results["onepass"].user_read
            <= 0.6 * pmem_results["ems"].user_read
        )


class TestDeviceSensitivity:
    def test_bd_device_prefers_ems(self, emulated_profiles, fmt):
        # Fig 11a: on a device with poor random reads EMS wins and
        # WiscSort pays a huge price.
        bd = emulated_profiles["bd"]
        ems = run(bd, ExternalMergeSort(fmt), n=20_000)
        wisc = run(bd, WiscSort(fmt), n=20_000)
        assert ems.total_time < wisc.total_time

    def test_brd_device_prefers_onepass(self, emulated_profiles, fmt):
        # Fig 11b: symmetric fast device -> OnePass best, EMS worst.
        brd = emulated_profiles["brd"]
        ems = run(brd, ExternalMergeSort(fmt), n=20_000)
        wisc = run(brd, WiscSort(fmt), n=20_000)
        sample = run(brd, SampleSort(fmt), n=20_000)
        assert wisc.total_time < sample.total_time < ems.total_time

    def test_bard_device_write_asymmetry_rewards_wiscsort(
        self, emulated_profiles, fmt
    ):
        # Fig 11c: EMS writes twice -> ~2x slower than WiscSort.
        bard = emulated_profiles["bard"]
        ems = run(bard, ExternalMergeSort(fmt), n=20_000)
        wisc = run(bard, WiscSort(fmt), n=20_000)
        assert 1.5 <= ems.total_time / wisc.total_time <= 3.5

    def test_small_values_make_mergepass_lose(self, pmem, fmt):
        # Fig 8: at V:K < 1 MergePass is worse than EMS, OnePass still wins.
        small = RecordFormat(key_size=10, value_size=10)
        ems = run(pmem, ExternalMergeSort(small), n=20_000, fmt_=small)
        one = run(pmem, WiscSort(small), n=20_000, fmt_=small)
        merge = run(
            pmem,
            WiscSort(small, force_merge_pass=True, merge_chunk_entries=5_000),
            n=20_000,
            fmt_=small,
        )
        assert one.total_time < ems.total_time
        assert merge.total_time > ems.total_time
