"""The simulation must be bit-for-bit deterministic.

Reproducibility is the point of the harness: identical seeds and
configurations must give identical simulated times, phase breakdowns
and output bytes -- across repeated runs and regardless of unrelated
machine state.
"""

from __future__ import annotations

import pytest

from repro.baselines import ExternalMergeSort, PMSortPlus, SampleSort
from repro.core.base import ConcurrencyModel, SortConfig
from repro.core.wiscsort import WiscSort
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.workloads.background import BackgroundClients


def snapshot(system_factory, n=5_000, seed=8, background=0):
    from tests.conftest import _PMEM as pmem

    machine = Machine(profile=pmem)
    fmt = RecordFormat()
    f = generate_dataset(machine, "input", n, fmt, seed=seed)
    if background:
        BackgroundClients(machine, background, "write").start()
    result = system_factory(fmt).run(machine, f, validate=False)
    output = machine.fs.open(result.output_name).peek().tobytes()
    return (result.total_time, tuple(sorted(result.phases.items())), output)


SYSTEMS = [
    lambda fmt: WiscSort(fmt),
    lambda fmt: WiscSort(fmt, force_merge_pass=True, merge_chunk_entries=1_500),
    lambda fmt: WiscSort(fmt, config=SortConfig(concurrency=ConcurrencyModel.NO_SYNC)),
    lambda fmt: ExternalMergeSort(fmt),
    lambda fmt: PMSortPlus(fmt),
    lambda fmt: SampleSort(fmt),
]


class TestDeterminism:
    @pytest.mark.parametrize("factory", SYSTEMS)
    def test_repeated_runs_identical(self, factory):
        assert snapshot(factory) == snapshot(factory)

    def test_background_clients_deterministic(self):
        a = snapshot(lambda fmt: WiscSort(fmt), background=4)
        b = snapshot(lambda fmt: WiscSort(fmt), background=4)
        assert a == b

    def test_different_seeds_differ(self):
        a = snapshot(lambda fmt: WiscSort(fmt), seed=1)
        b = snapshot(lambda fmt: WiscSort(fmt), seed=2)
        assert a[2] != b[2]  # different data
