"""Every sorting system must produce byte-identical output.

With unique keys the sorted permutation is unique, so all seven systems
(WiscSort x3 models, MergePass, EMS, PMSort, PMSort+, sample sort) must
emit exactly the same bytes for the same input -- a strong end-to-end
invariant over the entire stack.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import ExternalMergeSort, PMSort, PMSortPlus, SampleSort
from repro.core.base import ConcurrencyModel, SortConfig
from repro.core.wiscsort import WiscSort
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset


def output_bytes(pmem, system, n, fmt, seed):
    machine = Machine(profile=pmem)
    f = generate_dataset(machine, "input", n, fmt, seed=seed)
    result = system.run(machine, f, validate=False)
    return machine.fs.open(result.output_name).peek().tobytes()


def all_systems(fmt, n):
    return [
        WiscSort(fmt),
        WiscSort(fmt, config=SortConfig(concurrency=ConcurrencyModel.IO_OVERLAP)),
        WiscSort(fmt, config=SortConfig(concurrency=ConcurrencyModel.NO_SYNC)),
        WiscSort(fmt, force_merge_pass=True, merge_chunk_entries=max(1, n // 3)),
        ExternalMergeSort(fmt, config=SortConfig(
            read_buffer=64 * 1024, write_buffer=32 * 1024)),
        PMSort(fmt),
        PMSortPlus(fmt),
        SampleSort(fmt),
    ]


class TestEquivalence:
    def test_all_systems_agree(self, pmem):
        fmt = RecordFormat()
        n = 3_000
        outputs = {
            system.name: output_bytes(pmem, system, n, fmt, seed=17)
            for system in all_systems(fmt, n)
        }
        reference = next(iter(outputs.values()))
        for name, data in outputs.items():
            assert data == reference, f"{name} disagrees with the reference"

    @settings(max_examples=5, deadline=None)
    @given(n=st.integers(2, 300), seed=st.integers(0, 30))
    def test_wiscsort_matches_ems_for_any_input(self, pmem, n, seed):
        fmt = RecordFormat(key_size=6, value_size=14, pointer_size=4)
        wisc = output_bytes(pmem, WiscSort(fmt), n, fmt, seed)
        ems = output_bytes(
            pmem,
            ExternalMergeSort(fmt, config=SortConfig(
                read_buffer=8 * 1024, write_buffer=4 * 1024)),
            n, fmt, seed,
        )
        assert wisc == ems

    def test_agreement_on_every_device(self, pmem, dram, emulated_profiles):
        fmt = RecordFormat()
        n = 1_000
        profiles = [pmem, dram, *emulated_profiles.values()]
        for profile in profiles:
            wisc = output_bytes(profile, WiscSort(fmt), n, fmt, seed=4)
            ems = output_bytes(profile, ExternalMergeSort(fmt), n, fmt, seed=4)
            assert wisc == ems, profile.name
