"""Tests for the shared sorting-system interface pieces."""

from __future__ import annotations

import pytest

from repro.core.base import ConcurrencyModel, SortConfig, SortResult
from repro.errors import ConfigError


class TestSortConfig:
    def test_defaults_mirror_paper_buffers(self):
        config = SortConfig()
        # 10 GB / 5 GB at 1/1000 scale.
        assert config.read_buffer == 10 * 1024 * 1024
        assert config.write_buffer == 5 * 1024 * 1024
        assert config.concurrency is ConcurrencyModel.NO_IO_OVERLAP

    def test_tiny_buffers_rejected(self):
        with pytest.raises(ConfigError):
            SortConfig(read_buffer=100)
        with pytest.raises(ConfigError):
            SortConfig(write_buffer=100)

    def test_invalid_thread_counts_rejected(self):
        with pytest.raises(ConfigError):
            SortConfig(read_threads=0)
        with pytest.raises(ConfigError):
            SortConfig(write_threads=-1)
        with pytest.raises(ConfigError):
            SortConfig(sort_cores=0)

    def test_none_threads_mean_controller_decides(self):
        config = SortConfig()
        assert config.read_threads is None
        assert config.write_threads is None


class TestConcurrencyModel:
    def test_string_forms(self):
        assert str(ConcurrencyModel.NO_SYNC) == "no-sync"
        assert str(ConcurrencyModel.IO_OVERLAP) == "io-overlap"
        assert str(ConcurrencyModel.NO_IO_OVERLAP) == "no-io-overlap"

    def test_value_roundtrip(self):
        for model in ConcurrencyModel:
            assert ConcurrencyModel(model.value) is model


class TestSortResult:
    def make(self):
        return SortResult(
            system="test",
            total_time=0.5,
            phases={"RUN read": 0.2, "RUN write": 0.3},
            internal_read=100.0,
            internal_written=200.0,
            user_read=90.0,
            user_written=180.0,
            output_name="out",
            n_records=10,
            validated=True,
        )

    def test_phase_lookup_with_default(self):
        result = self.make()
        assert result.phase("RUN read") == 0.2
        assert result.phase("nonexistent") == 0.0

    def test_summary_contains_system_and_phases(self):
        text = self.make().summary()
        assert "test" in text
        assert "RUN read" in text
