"""Tests for IndexMap compression (Sec 5 extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.compression import (
    CompressedRunWriter,
    CompressionModel,
    estimate_benefit,
)
from repro.core.wiscsort import WiscSort
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset


class TestModel:
    def test_cost_functions(self):
        model = CompressionModel()
        assert model.compress_seconds(int(model.compress_bw_per_core)) == pytest.approx(1.0)
        assert model.decompress_seconds(0) == 0.0

    def test_invalid_level_rejected(self):
        with pytest.raises(ConfigError):
            CompressionModel(level=0)
        with pytest.raises(ConfigError):
            CompressionModel(frame_entries=0)


class TestFrames:
    def test_roundtrip_via_zlib(self):
        import zlib

        model = CompressionModel(frame_entries=100)
        writer = CompressedRunWriter(model)
        rng = np.random.default_rng(1)
        entries = rng.integers(0, 4, size=350 * 15, dtype=np.uint8)  # compressible
        payload, frames, ratio = writer.build_frames(entries, 15)
        assert ratio > 1.0
        assert sum(f.n_entries for f in frames) == 350
        assert len(frames) == 4  # 100+100+100+50
        rebuilt = b"".join(
            zlib.decompress(
                payload[f.offset : f.offset + f.compressed_bytes].tobytes()
            )
            for f in frames
        )
        assert rebuilt == entries.tobytes()

    def test_incompressible_data_ratio_near_one(self):
        writer = CompressedRunWriter(CompressionModel())
        rng = np.random.default_rng(2)
        entries = rng.integers(0, 256, size=1000 * 15, dtype=np.uint8)
        _, _, ratio = writer.build_frames(entries, 15)
        assert 0.9 <= ratio <= 1.1

    def test_misaligned_buffer_rejected(self):
        from repro.errors import SimulationError

        writer = CompressedRunWriter(CompressionModel())
        with pytest.raises(SimulationError):
            writer.build_frames(np.zeros(16, dtype=np.uint8), 15)


class TestBenefitEstimate:
    def test_ratio_one_never_worthwhile(self, pmem, host):
        model = CompressionModel()
        assert estimate_benefit(pmem, host, model, ratio=1.0) < 0

    def test_huge_ratio_on_slow_writes_worthwhile(self, host):
        from repro.device.profiles import bard_device_profile

        bard = bard_device_profile()  # writes ~4x slower than reads
        model = CompressionModel(compress_bw_per_core=4e9, decompress_bw_per_core=8e9)
        assert estimate_benefit(bard, host, model, ratio=3.0, cores=16) > 0

    def test_invalid_ratio_rejected(self, pmem, host):
        with pytest.raises(ConfigError):
            estimate_benefit(pmem, host, CompressionModel(), ratio=0)


class TestCompressedMergePass:
    @pytest.mark.parametrize("skewed", [False, True])
    def test_sort_remains_correct(self, pmem, skewed):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = generate_dataset(machine, "input", 4_000, fmt, seed=9)
        if skewed:
            data = f.peek().reshape(-1, fmt.record_size)
            data[:, 2 : fmt.key_size] = 0
            f.poke(0, data.reshape(-1))
        system = WiscSort(
            fmt,
            force_merge_pass=True,
            merge_chunk_entries=1_000,
            compression=CompressionModel(frame_entries=128),
        )
        result = system.run(machine, f)  # validates
        assert result.n_records == 4_000
        assert system.achieved_compression_ratio is not None

    def test_compressed_run_files_are_smaller_when_compressible(self, pmem):
        fmt = RecordFormat()

        def run_write_bytes(compress):
            machine = Machine(profile=pmem)
            f = generate_dataset(machine, "input", 4_000, fmt, seed=9)
            data = f.peek().reshape(-1, fmt.record_size)
            data[:, 2 : fmt.key_size] = 0  # compressible keys
            f.poke(0, data.reshape(-1))
            system = WiscSort(
                fmt,
                force_merge_pass=True,
                merge_chunk_entries=1_000,
                compression=CompressionModel() if compress else None,
            )
            system.run(machine, f, validate=False)
            return machine.stats.tags["RUN write"].user_bytes

        assert run_write_bytes(True) < 0.7 * run_write_bytes(False)

    def test_decompression_cost_charged(self, pmem):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = generate_dataset(machine, "input", 4_000, fmt, seed=9)
        system = WiscSort(
            fmt,
            force_merge_pass=True,
            merge_chunk_entries=1_000,
            compression=CompressionModel(),
        )
        system.run(machine, f, validate=False)
        assert machine.stats.tags["MERGE decompress"].busy_time > 0
        assert machine.stats.tags["RUN compress"].busy_time > 0
