"""Tests for the IndexMap structure."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.indexmap import IndexMap
from repro.errors import RecordFormatError


def make_map(n=10, key_size=10, pointer_size=5, with_vlens=False, seed=0):
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 256, size=(n, key_size), dtype=np.uint8)
    pointers = rng.integers(0, 1 << 30, size=n).astype(np.int64)
    vlens = rng.integers(0, 1000, size=n).astype(np.int64) if with_vlens else None
    return IndexMap(
        keys=keys,
        pointers=pointers,
        pointer_size=pointer_size,
        vlens=vlens,
        len_size=4 if with_vlens else 0,
    )


class TestRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(
        n=st.integers(0, 50),
        key_size=st.integers(1, 16),
        pointer_size=st.integers(4, 8),
        seed=st.integers(0, 100),
    )
    def test_bytes_roundtrip(self, n, key_size, pointer_size, seed):
        imap = make_map(n, key_size, pointer_size, seed=seed)
        back = IndexMap.from_bytes(imap.to_bytes(), key_size, pointer_size)
        assert np.array_equal(back.keys, imap.keys)
        assert np.array_equal(back.pointers, imap.pointers)

    def test_roundtrip_with_vlens(self):
        imap = make_map(20, with_vlens=True)
        back = IndexMap.from_bytes(imap.to_bytes(), 10, 5, len_size=4)
        assert np.array_equal(back.vlens, imap.vlens)

    def test_entry_size(self):
        assert make_map().entry_size == 15
        assert make_map(with_vlens=True).entry_size == 19

    def test_nbytes(self):
        assert make_map(7).nbytes == 7 * 15

    def test_misaligned_buffer_rejected(self):
        with pytest.raises(RecordFormatError):
            IndexMap.from_bytes(np.zeros(16, dtype=np.uint8), 10, 5)

    def test_pointer_out_of_range_rejected(self):
        imap = IndexMap(
            keys=np.zeros((1, 4), dtype=np.uint8),
            pointers=np.array([1 << 50], dtype=np.int64),
            pointer_size=5,
        )
        with pytest.raises(RecordFormatError):
            imap.to_bytes()

    def test_pointer_exact_boundary(self):
        # 2^40 - 1 fits in a 5-byte pointer (the paper's footnote).
        imap = IndexMap(
            keys=np.zeros((1, 4), dtype=np.uint8),
            pointers=np.array([(1 << 40) - 1], dtype=np.int64),
            pointer_size=5,
        )
        back = IndexMap.from_bytes(imap.to_bytes(), 4, 5)
        assert back.pointers[0] == (1 << 40) - 1


class TestSorting:
    def test_sorted_orders_keys_and_carries_pointers(self):
        keys = np.array([[3], [1], [2]], dtype=np.uint8)
        pointers = np.array([30, 10, 20], dtype=np.int64)
        imap = IndexMap(keys=keys, pointers=pointers, pointer_size=5)
        s = imap.sorted()
        assert s.keys.reshape(-1).tolist() == [1, 2, 3]
        assert s.pointers.tolist() == [10, 20, 30]

    def test_sorted_carries_vlens(self):
        imap = IndexMap(
            keys=np.array([[2], [1]], dtype=np.uint8),
            pointers=np.array([5, 9], dtype=np.int64),
            pointer_size=5,
            vlens=np.array([100, 200], dtype=np.int64),
            len_size=4,
        )
        assert imap.sorted().vlens.tolist() == [200, 100]

    def test_slice(self):
        imap = make_map(10)
        part = imap.slice(2, 5)
        assert len(part) == 3
        assert np.array_equal(part.keys, imap.keys[2:5])


class TestFixedRecords:
    def test_pointers_follow_formula(self):
        # Sec 3.7: pointer = start + record_id * record_size.
        keys = np.zeros((4, 10), dtype=np.uint8)
        imap = IndexMap.for_fixed_records(keys, first_record=7, record_size=100)
        assert imap.pointers.tolist() == [700, 800, 900, 1000]

    def test_validation(self):
        with pytest.raises(RecordFormatError):
            IndexMap(
                keys=np.zeros((2, 4), dtype=np.uint8),
                pointers=np.zeros(3, dtype=np.int64),
            )
        with pytest.raises(RecordFormatError):
            IndexMap(
                keys=np.zeros((2, 4), dtype=np.uint8),
                pointers=np.zeros(2, dtype=np.int64),
                vlens=np.zeros(2, dtype=np.int64),
                len_size=0,
            )
