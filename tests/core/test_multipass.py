"""Tests for multi-phase merging (M > 1, paper Sec 2.1/2.4.1)."""

from __future__ import annotations

import pytest

from repro.baselines.external_merge_sort import ExternalMergeSort
from repro.core.base import SortConfig
from repro.core.multipass import grouped, max_fanin, merge_rounds
from repro.core.wiscsort import WiscSort
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset


class TestPlanning:
    def test_max_fanin_scales_with_buffer(self):
        assert max_fanin(16 * 1024, entry_size=100) == 10
        assert max_fanin(160 * 1024, entry_size=100) == 102

    def test_max_fanin_floor_is_two(self):
        assert max_fanin(64, entry_size=100) == 2

    def test_merge_rounds(self):
        assert merge_rounds(0, 8) == 0
        assert merge_rounds(1, 8) == 1
        assert merge_rounds(8, 8) == 1
        assert merge_rounds(9, 8) == 2
        assert merge_rounds(64, 8) == 2
        assert merge_rounds(65, 8) == 3

    def test_invalid_fanin_rejected(self):
        with pytest.raises(ConfigError):
            merge_rounds(10, 1)

    def test_grouped_partitions(self):
        names = [f"r{i}" for i in range(7)]
        groups = list(grouped(names, 3))
        assert groups == [["r0", "r1", "r2"], ["r3", "r4", "r5"], ["r6"]]


def run(pmem, system, n=6_000, seed=5):
    fmt = RecordFormat()
    machine = Machine(profile=pmem)
    f = generate_dataset(machine, "input", n, fmt, seed=seed)
    result = system.run(machine, f)  # validates
    return machine, result


class TestEmsMultiPass:
    def test_tiny_buffer_forces_multiple_phases(self, pmem):
        fmt = RecordFormat()
        # read buffer windows at most 4096/(100*16) = 2 runs; many runs.
        config = SortConfig(read_buffer=4096, write_buffer=4096)
        system = ExternalMergeSort(fmt, config=config)
        _, result = run(pmem, system, n=600)
        assert system.merge_passes >= 2
        assert result.n_records == 600

    def test_single_phase_in_the_common_case(self, pmem):
        system = ExternalMergeSort(RecordFormat())
        run(pmem, system)
        assert system.merge_passes <= 1

    def test_traffic_grows_with_merge_passes(self, pmem):
        fmt = RecordFormat()
        n = 2_000
        dataset = n * fmt.record_size

        def traffic(read_buffer):
            config = SortConfig(read_buffer=read_buffer, write_buffer=4096)
            system = ExternalMergeSort(fmt, config=config)
            _, result = run(pmem, system, n=n)
            return system.merge_passes, result.user_written

        m1, written1 = traffic(64 * 1024)
        m2, written2 = traffic(4 * 1024)
        assert m2 > m1
        # Sec 2.4.1: device write traffic is (1 + M) x dataset.
        assert written1 == pytest.approx((1 + m1) * dataset, rel=0.05)
        assert written2 == pytest.approx((1 + m2) * dataset, rel=0.20)

    def test_intermediate_files_cleaned(self, pmem):
        config = SortConfig(read_buffer=4096, write_buffer=4096)
        system = ExternalMergeSort(RecordFormat(), config=config)
        machine, _ = run(pmem, system, n=600)
        leftovers = [n for n in machine.fs.list() if "merge" in n or ".run." in n]
        assert leftovers == []


class TestWiscSortMultiPass:
    def test_many_indexmap_runs_merge_in_phases(self, pmem):
        fmt = RecordFormat()
        config = SortConfig(read_buffer=4096, write_buffer=4096)
        system = WiscSort(
            fmt, config=config, force_merge_pass=True, merge_chunk_entries=100
        )
        _, result = run(pmem, system, n=3_000)
        assert system.merge_passes >= 2
        assert result.n_records == 3_000

    def test_values_gathered_exactly_once(self, pmem):
        # Intermediate phases merge entries only: RECORD-read user bytes
        # equal the dataset regardless of M.
        fmt = RecordFormat()
        n = 3_000
        config = SortConfig(read_buffer=4096, write_buffer=4096)
        system = WiscSort(
            fmt, config=config, force_merge_pass=True, merge_chunk_entries=100
        )
        machine, _ = run(pmem, system, n=n)
        assert system.merge_passes >= 2
        gathered = machine.stats.tags["RECORD read"].user_bytes
        assert gathered == pytest.approx(n * fmt.record_size)

    def test_intermediate_runs_cleaned(self, pmem):
        config = SortConfig(read_buffer=4096, write_buffer=4096)
        system = WiscSort(
            RecordFormat(), config=config,
            force_merge_pass=True, merge_chunk_entries=100,
        )
        machine, _ = run(pmem, system, n=3_000)
        leftovers = [n for n in machine.fs.list() if "index" in n]
        assert leftovers == []

    def test_compressed_multipass_still_correct(self, pmem):
        from repro.core.compression import CompressionModel

        fmt = RecordFormat()
        config = SortConfig(read_buffer=4096, write_buffer=4096)
        system = WiscSort(
            fmt, config=config, force_merge_pass=True, merge_chunk_entries=100,
            compression=CompressionModel(frame_entries=64),
        )
        _, result = run(pmem, system, n=2_000)
        assert result.n_records == 2_000
        assert system.merge_passes >= 2
