"""Tests for device calibration and the thread-pool controller."""

from __future__ import annotations

import pytest

from repro.calibrate.microbench import calibrate_device
from repro.core.base import ConcurrencyModel, SortConfig
from repro.core.controller import ThreadPoolController
from repro.device.profile import Pattern
from repro.machine import Machine


class TestCalibration:
    def test_pmem_pools_match_paper(self, pmem, host):
        # Sec 3.8: reads scale to 16-32 threads, writes ~5.
        cal = calibrate_device(pmem, host)
        assert 12 <= cal.seq_read.best_threads <= 32
        assert 16 <= cal.rand_read.best_threads <= 48
        assert 3 <= cal.write.best_threads <= 6

    def test_measured_peaks_close_to_profile(self, pmem, host):
        cal = calibrate_device(pmem, host)
        assert cal.seq_read.peak_bandwidth == pytest.approx(
            pmem.seq_read.peak, rel=0.05
        )
        assert cal.write.peak_bandwidth == pytest.approx(pmem.write.peak, rel=0.05)

    def test_write_probe_sees_degradation(self, pmem, host):
        cal = calibrate_device(pmem, host)
        points = dict(cal.write.points)
        assert points[32] < points[5]

    def test_cache_hit_returns_same_object(self, pmem, host):
        a = calibrate_device(pmem, host)
        b = calibrate_device(pmem, host)
        assert a is b

    def test_table_is_printable(self, pmem, host):
        lines = calibrate_device(pmem, host).table()
        assert any("seq-read" in line for line in lines)

    def test_emulated_device_pools_adapt(self, emulated_profiles, host):
        bard = emulated_profiles["bard"]
        cal = calibrate_device(bard, host)
        # BARD writes scale to 32 threads -- the controller must find that.
        assert cal.write.best_threads >= 24


class TestController:
    def test_defaults_from_calibration(self, pmem):
        machine = Machine(profile=pmem)
        ctl = ThreadPoolController(machine, SortConfig())
        assert ctl.read_threads(Pattern.SEQ) >= 12
        assert 3 <= ctl.write_threads() <= 6
        assert ctl.sort_cores() == machine.host.ncores

    def test_explicit_overrides_win(self, pmem):
        machine = Machine(profile=pmem)
        config = SortConfig(read_threads=7, write_threads=2, sort_cores=3)
        ctl = ThreadPoolController(machine, config)
        assert ctl.read_threads(Pattern.SEQ) == 7
        assert ctl.read_threads(Pattern.RAND) == 7
        assert ctl.write_threads() == 2
        assert ctl.sort_cores() == 3

    def test_no_sync_is_uncontrolled(self, pmem):
        machine = Machine(profile=pmem)
        ctl = ThreadPoolController(
            machine, SortConfig(concurrency=ConcurrencyModel.NO_SYNC)
        )
        assert ctl.read_threads(Pattern.SEQ) == machine.host.ncores
        assert ctl.write_threads() == machine.host.ncores

    def test_describe_lists_pools(self, pmem):
        machine = Machine(profile=pmem)
        ctl = ThreadPoolController(machine, SortConfig())
        text = ctl.describe()
        assert "write=" in text and "seq-read=" in text
