"""Tests for natural-run detection and the elision sort variant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.natural_runs import (
    NaturalRunWiscSort,
    find_natural_runs,
    sortedness,
)
from repro.core.wiscsort import WiscSort
from repro.device.profiles import bard_device_profile
from repro.machine import Machine
from repro.records.format import RecordFormat, record_sort_indices
from repro.records.gensort import generate_dataset


def presorted_dataset(machine, n, fraction, fmt, seed=3):
    """A dataset whose leading ``fraction`` of rows is key-sorted."""
    f = generate_dataset(machine, "input", n, fmt, seed=seed)
    if fraction > 0:
        data = f.peek().reshape(-1, fmt.record_size)
        cut = int(n * fraction)
        head = data[:cut]
        data[:cut] = head[record_sort_indices(head, fmt.key_size)]
        f.poke(0, data.reshape(-1))
    return f


class TestFindNaturalRuns:
    def test_fully_sorted_is_one_run(self):
        keys = np.sort(
            np.random.default_rng(0).integers(0, 256, (50, 1), dtype=np.uint8), axis=0
        )
        assert find_natural_runs(keys) == [(0, 50)]

    def test_strictly_descending_is_all_singletons(self):
        keys = np.arange(10, 0, -1, dtype=np.uint8).reshape(-1, 1)
        runs = find_natural_runs(keys)
        assert runs == [(i, i + 1) for i in range(10)]

    def test_runs_partition_the_input(self):
        rng = np.random.default_rng(4)
        keys = rng.integers(0, 256, (200, 3), dtype=np.uint8)
        runs = find_natural_runs(keys)
        assert runs[0][0] == 0 and runs[-1][1] == 200
        for (a, b), (c, d) in zip(runs, runs[1:]):
            assert b == c

    @settings(max_examples=50, deadline=None)
    @given(
        rows=st.lists(st.binary(min_size=2, max_size=2), min_size=1, max_size=60)
    )
    def test_each_run_is_nondecreasing_and_maximal(self, rows):
        keys = np.frombuffer(b"".join(rows), dtype=np.uint8).reshape(len(rows), 2)
        runs = find_natural_runs(keys)
        as_bytes = [bytes(r) for r in keys]
        for start, stop in runs:
            segment = as_bytes[start:stop]
            assert segment == sorted(segment)
            if stop < len(rows):
                assert as_bytes[stop - 1] > as_bytes[stop]  # maximality

    def test_empty(self):
        assert find_natural_runs(np.zeros((0, 2), dtype=np.uint8)) == []


class TestSortedness:
    def test_extremes(self):
        asc = np.arange(10, dtype=np.uint8).reshape(-1, 1)
        desc = asc[::-1]
        assert sortedness(asc) == 1.0
        assert sortedness(desc) == 0.0

    def test_singleton(self):
        assert sortedness(np.zeros((1, 4), dtype=np.uint8)) == 1.0


class TestNaturalRunWiscSort:
    @pytest.mark.parametrize("fraction", [0.0, 0.5, 1.0])
    def test_output_correct_at_any_sortedness(self, pmem, fraction):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = presorted_dataset(machine, 8_000, fraction, fmt)
        system = NaturalRunWiscSort(
            fmt, force_merge_pass=True, merge_chunk_entries=2_000
        )
        result = system.run(machine, f)  # validates
        assert result.n_records == 8_000

    def test_detects_natural_chunks(self, pmem):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = presorted_dataset(machine, 8_000, 1.0, fmt)
        system = NaturalRunWiscSort(
            fmt, force_merge_pass=True, merge_chunk_entries=2_000
        )
        system.run(machine, f, validate=False)
        assert system.natural_chunks == 4
        assert system.sorted_chunks == 0

    def test_random_input_has_no_natural_chunks(self, pmem):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = presorted_dataset(machine, 8_000, 0.0, fmt)
        system = NaturalRunWiscSort(
            fmt, force_merge_pass=True, merge_chunk_entries=2_000
        )
        system.run(machine, f, validate=False)
        assert system.natural_chunks == 0
        assert system.sorted_chunks == 4

    def test_elides_indexmap_writes_for_natural_chunks(self, pmem):
        fmt = RecordFormat()

        def run_writes(cls):
            machine = Machine(profile=pmem)
            f = presorted_dataset(machine, 8_000, 1.0, fmt)
            system = cls(fmt, force_merge_pass=True, merge_chunk_entries=2_000)
            system.run(machine, f, validate=False)
            return machine.stats.tags.get("RUN write")

        assert run_writes(NaturalRunWiscSort) is None  # no run files at all
        assert run_writes(WiscSort).user_bytes > 0

    def test_wins_on_write_asymmetric_device(self):
        # The MONTRES/NVMSorting motivation: on devices where writes are
        # expensive, skipping IndexMap writes pays off.
        fmt = RecordFormat()
        bard = bard_device_profile()

        def total(cls):
            machine = Machine(profile=bard)
            f = presorted_dataset(machine, 50_000, 1.0, fmt)
            system = cls(fmt, force_merge_pass=True, merge_chunk_entries=12_500)
            return system.run(machine, f, validate=False).total_time

        assert total(NaturalRunWiscSort) < total(WiscSort)

    def test_mixed_chunks_partition_correctly(self, pmem):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = presorted_dataset(machine, 8_000, 0.5, fmt)
        system = NaturalRunWiscSort(
            fmt, force_merge_pass=True, merge_chunk_entries=2_000
        )
        system.run(machine, f)
        assert system.natural_chunks >= 1
        assert system.sorted_chunks >= 1
        assert system.natural_chunks + system.sorted_chunks == 4
