"""MergeFrontier must be observationally identical to the naive loop.

``wiscsort._merge_loop`` drives the k-way merge through
:class:`repro.core.kway.MergeFrontier` (incremental bookkeeping); the
public :func:`merge_step` / :func:`redistribute_on_drain` pair is the
reference implementation other systems still use.  These tests drive
both protocols over identical run sets and require identical emitted
batches, refill traffic and buffer redistribution.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kway import (
    MergeFrontier,
    RunCursor,
    merge_step,
    redistribute_on_drain,
)
from repro.machine import Machine
from repro.records.format import key_sort_indices

from tests.core.test_kway import build_runs, sorted_runs


def drive_naive(machine, files, entry_size, key_size, window_bytes):
    """Reference protocol: full-scan merge_step + redistribute_on_drain."""
    cursors = [RunCursor(f, entry_size, key_size, window_bytes) for f in files]
    batches = []

    def driver():
        while any(not c.done for c in cursors):
            for cursor in cursors:
                if cursor.needs_refill:
                    data = yield cursor.refill_op(tag="merge")
                    cursor.accept(data)
            emitted, ways = merge_step(cursors)
            if emitted.shape[0]:
                batches.append((emitted, ways))
            redistribute_on_drain(cursors)

    machine.run(driver())
    return batches, cursors


def drive_frontier(machine, files, entry_size, key_size, window_bytes):
    """Incremental protocol, as used by wiscsort._merge_loop."""
    cursors = [RunCursor(f, entry_size, key_size, window_bytes) for f in files]
    batches = []

    def driver():
        frontier = MergeFrontier(cursors)
        while not frontier.done:
            refills = frontier.take_refills()
            for cursor in refills:
                data = yield cursor.refill_op(tag="merge")
                cursor.accept(data)
            frontier.note_refilled(refills)
            emitted, ways = frontier.step()
            if emitted.shape[0]:
                batches.append((emitted, ways))

    machine.run(driver())
    return batches, cursors


class TestFrontierEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(data=sorted_runs(), window=st.integers(1, 64))
    def test_identical_batches_and_refills(self, pmem, data, window):
        key_size, entry_size, runs = data
        window_bytes = max(entry_size, window)

        m1 = Machine(profile=pmem)
        naive_batches, naive_cursors = drive_naive(
            m1, build_runs(m1, runs, entry_size), entry_size, key_size, window_bytes
        )
        m2 = Machine(profile=pmem)
        front_batches, front_cursors = drive_frontier(
            m2, build_runs(m2, runs, entry_size), entry_size, key_size, window_bytes
        )

        assert len(naive_batches) == len(front_batches)
        for (eb, wb), (ef, wf) in zip(naive_batches, front_batches):
            assert wb == wf
            assert np.array_equal(eb, ef)
        # Same refill traffic and same end-state buffer shares per run.
        for cn, cf in zip(naive_cursors, front_cursors):
            assert cn.bytes_loaded == cf.bytes_loaded
            assert cn.window_entries == cf.window_entries

    def test_frontier_output_is_globally_sorted(self, pmem):
        machine = Machine(profile=pmem)
        rng = np.random.default_rng(11)
        runs = []
        for _ in range(5):
            mat = rng.integers(0, 256, size=(60, 6), dtype=np.uint8)
            runs.append(mat[key_sort_indices(mat[:, :2])])
        files = build_runs(machine, runs, 6)
        batches, _ = drive_frontier(machine, files, 6, 2, window_bytes=18)
        merged = np.concatenate([b for b, _ in batches], axis=0)
        assert merged.shape[0] == 300
        keys = [bytes(row[:2]) for row in merged]
        assert keys == sorted(keys)

    def test_frontier_skips_initially_empty_runs(self, pmem):
        machine = Machine(profile=pmem)
        run = np.array([[3, 1], [5, 2]], dtype=np.uint8)
        empty = np.zeros((0, 2), dtype=np.uint8)
        files = build_runs(machine, [empty, run, empty], 2)
        batches, _ = drive_frontier(machine, files, 2, 1, window_bytes=4)
        merged = np.concatenate([b for b, _ in batches], axis=0)
        assert np.array_equal(merged, run)
