"""Tests for the interference-aware scheduling helpers."""

from __future__ import annotations

import pytest

from repro.core.base import ConcurrencyModel
from repro.core.scheduler import pipelined_batches, run_ops_parallel
from repro.device.profile import Pattern
from repro.machine import Machine


def make_ops(machine, n, nbytes=1 << 20):
    reads = [
        machine.io("read", Pattern.SEQ, nbytes, tag="produce", threads=16)
        for _ in range(n)
    ]
    writes = [
        machine.io("write", Pattern.SEQ, nbytes, tag="consume", threads=5)
        for _ in range(n)
    ]
    return reads, writes


def drive(pmem, model, n_batches=4):
    """Run n produce/consume batches under the model; return timeline."""
    machine = Machine(profile=pmem)
    reads, writes = make_ops(machine, n_batches)
    items = list(range(n_batches))

    def proc():
        yield from pipelined_batches(
            machine,
            model,
            items,
            produce=lambda i: reads[i],
            consume=lambda i, data: writes[i],
        )

    machine.run(proc())
    return machine, reads, writes


class TestNoIoOverlap:
    def test_reads_and_writes_never_overlap(self, pmem):
        machine, reads, writes = drive(pmem, ConcurrencyModel.NO_IO_OVERLAP)
        intervals = [(op.started_at, op.finished_at, "r") for op in reads]
        intervals += [(op.started_at, op.finished_at, "w") for op in writes]
        intervals.sort()
        for (s1, e1, k1), (s2, e2, k2) in zip(intervals, intervals[1:]):
            if k1 != k2:
                assert e1 <= s2 + 1e-12, "read and write overlapped"

    def test_strict_alternation(self, pmem):
        machine, reads, writes = drive(pmem, ConcurrencyModel.NO_IO_OVERLAP)
        for i in range(len(reads) - 1):
            assert writes[i].finished_at <= reads[i + 1].started_at + 1e-12


class TestIoOverlap:
    def test_write_overlaps_next_produce(self, pmem):
        machine, reads, writes = drive(pmem, ConcurrencyModel.IO_OVERLAP)
        overlapped = any(
            writes[i].finished_at > reads[i + 1].started_at + 1e-12
            for i in range(len(reads) - 1)
        )
        assert overlapped

    def test_data_dependency_respected(self, pmem):
        # A batch's write never starts before its own read completed.
        machine, reads, writes = drive(pmem, ConcurrencyModel.IO_OVERLAP)
        for r, w in zip(reads, writes):
            assert w.started_at >= r.finished_at - 1e-12

    def test_faster_than_no_overlap_without_interference(self, dram):
        # On an interference-free device overlapping is a pure win.
        _, r0, w0 = drive(dram, ConcurrencyModel.NO_IO_OVERLAP)
        t_serial = max(op.finished_at for op in w0)
        _, r1, w1 = drive(dram, ConcurrencyModel.IO_OVERLAP)
        t_overlap = max(op.finished_at for op in w1)
        assert t_overlap < t_serial


class TestNoSync:
    def test_same_batch_read_write_overlap(self, pmem):
        machine, reads, writes = drive(pmem, ConcurrencyModel.NO_SYNC)
        for r, w in zip(reads, writes):
            # gather and write of the same batch run concurrently
            assert w.started_at < r.finished_at

    def test_slowest_on_pmem(self, pmem):
        times = {}
        for model in ConcurrencyModel:
            _, _, writes = drive(pmem, model)
            times[model] = max(op.finished_at for op in writes)
        assert times[ConcurrencyModel.NO_IO_OVERLAP] == min(times.values())
        assert times[ConcurrencyModel.NO_SYNC] == max(times.values())


class TestRunOpsParallel:
    def test_results_in_submission_order(self, pmem):
        machine = Machine(profile=pmem)
        a = machine.compute(0.002, tag="a")
        b = machine.compute(0.001, tag="b")
        a.on_complete = lambda op: "A"
        b.on_complete = lambda op: "B"
        holder = {}

        def proc():
            holder["out"] = yield from run_ops_parallel(machine, [a, b])

        machine.run(proc())
        assert holder["out"] == ["A", "B"]

    def test_empty_list(self, pmem):
        machine = Machine(profile=pmem)
        holder = {}

        def proc():
            holder["out"] = yield from run_ops_parallel(machine, [])

        machine.run(proc())
        assert holder["out"] == []

    def test_wall_time_is_max_not_sum(self, pmem):
        machine = Machine(profile=pmem)
        ops = [machine.compute(0.003, tag="x", cores=1) for _ in range(3)]

        def proc():
            yield from run_ops_parallel(machine, ops)

        machine.run(proc())
        # 3 single-core ops on 16 cores run fully parallel.
        assert machine.now == pytest.approx(0.003, rel=1e-6)
