"""End-to-end tests for the variable-length (KLV) WiscSort variant."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import ConcurrencyModel, SortConfig
from repro.core.klv_sort import WiscSortKLV, reencode_klv, scan_klv_headers
from repro.machine import Machine
from repro.records.klv import KLVFormat, decode_klv, encode_klv, generate_klv_dataset


def klv_run(pmem, n, system=None, min_value=5, max_value=60, seed=0, **machine_kw):
    fmt = KLVFormat()
    machine = Machine(profile=pmem, **machine_kw)
    f = generate_klv_dataset(
        machine, "input", n, fmt, min_value=min_value, max_value=max_value, seed=seed
    )
    system = system or WiscSortKLV(fmt)
    result = system.run(machine, f)
    return machine, system, result


class TestScanHeaders:
    def test_scan_recovers_offsets_and_lengths(self):
        fmt = KLVFormat(key_size=3, len_size=2)
        keys = np.array([[1, 2, 3], [4, 5, 6]], dtype=np.uint8)
        values = [np.array([9] * 7, dtype=np.uint8), np.array([8] * 2, dtype=np.uint8)]
        stream = encode_klv(keys, values, fmt)
        out_keys, offsets, vlens = scan_klv_headers(stream, fmt)
        assert np.array_equal(out_keys, keys)
        assert vlens.tolist() == [7, 2]
        assert offsets.tolist() == [5, 17]  # header 5B, then 5+7+5

    def test_empty_stream(self):
        fmt = KLVFormat()
        keys, offsets, vlens = scan_klv_headers(np.zeros(0, dtype=np.uint8), fmt)
        assert keys.shape == (0, fmt.key_size)
        assert offsets.size == 0

    def test_reencode_roundtrip(self):
        fmt = KLVFormat(key_size=2, len_size=1)
        keys = np.array([[1, 1], [2, 2]], dtype=np.uint8)
        vlens = np.array([3, 1], dtype=np.int64)
        flat = np.array([7, 7, 7, 9], dtype=np.uint8)
        stream = reencode_klv(keys, vlens, flat, fmt)
        assert decode_klv(stream, fmt) == [
            (b"\x01\x01", b"\x07\x07\x07"),
            (b"\x02\x02", b"\x09"),
        ]


class TestOnePassKLV:
    def test_sorts_variable_records(self, pmem):
        _, system, result = klv_run(pmem, 2_000)
        assert result.n_records == 2_000
        assert system.used_merge_pass is False

    def test_wide_length_spread(self, pmem):
        klv_run(pmem, 500, min_value=0, max_value=400)

    def test_single_record(self, pmem):
        _, _, result = klv_run(pmem, 1)
        assert result.n_records == 1

    def test_empty_input(self, pmem):
        fmt = KLVFormat()
        machine = Machine(profile=pmem)
        f = machine.fs.create("input")
        result = WiscSortKLV(fmt).run(machine, f)
        assert result.n_records == 0

    @settings(max_examples=8, deadline=None)
    @given(n=st.integers(1, 200), seed=st.integers(0, 20))
    def test_random_property(self, pmem, n, seed):
        klv_run(pmem, n, seed=seed)

    def test_io_overlap_model(self, pmem):
        fmt = KLVFormat()
        system = WiscSortKLV(
            fmt, config=SortConfig(concurrency=ConcurrencyModel.IO_OVERLAP)
        )
        klv_run(pmem, 1_000, system=system)


class TestMergePassKLV:
    def test_forced_merge_pass(self, pmem):
        fmt = KLVFormat()
        system = WiscSortKLV(fmt, force_merge_pass=True, merge_chunk_entries=300)
        _, system, result = klv_run(pmem, 1_500, system=system)
        assert system.used_merge_pass is True
        assert result.n_records == 1_500

    def test_dram_budget_triggers_merge_pass(self, pmem):
        fmt = KLVFormat()
        n = 5_000
        budget = n * fmt.index_entry_size // 3
        system = WiscSortKLV(fmt, config=SortConfig(
            read_buffer=8192, write_buffer=8192))
        _, system, result = klv_run(
            pmem, n, system=system, dram_budget=budget
        )
        assert system.used_merge_pass is True

    def test_run_files_cleaned(self, pmem):
        fmt = KLVFormat()
        system = WiscSortKLV(fmt, force_merge_pass=True, merge_chunk_entries=200)
        machine, _, _ = klv_run(pmem, 1_000, system=system)
        assert not [n for n in machine.fs.list() if "indexmap" in n]


class TestSerialScanCost:
    def test_run_read_is_single_threaded(self, pmem):
        """The serial header walk must cost a 1-thread sequential scan."""
        machine, _, result = klv_run(pmem, 5_000)
        file_size = machine.fs.open("input").size
        single_thread_bw = pmem.seq_read.aggregate(1)
        expected_min = file_size / single_thread_bw
        assert result.phase("RUN read") >= 0.9 * expected_min
