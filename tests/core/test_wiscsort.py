"""End-to-end correctness tests for WiscSort."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.base import ConcurrencyModel, SortConfig
from repro.core.wiscsort import WiscSort
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset


def sort_run(pmem, n, fmt=None, system=None, dram_budget=None, seed=0):
    fmt = fmt or RecordFormat()
    machine = Machine(profile=pmem, dram_budget=dram_budget)
    f = generate_dataset(machine, "input", n, fmt, seed=seed)
    system = system or WiscSort(fmt)
    result = system.run(machine, f)  # validates internally
    return machine, system, result


ALL_MODELS = [
    ConcurrencyModel.NO_IO_OVERLAP,
    ConcurrencyModel.IO_OVERLAP,
    ConcurrencyModel.NO_SYNC,
]


class TestOnePass:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_correct_under_every_concurrency_model(self, pmem, model):
        fmt = RecordFormat()
        _, _, result = sort_run(
            pmem, 5_000, fmt, WiscSort(fmt, config=SortConfig(concurrency=model))
        )
        assert result.n_records == 5_000

    def test_tiny_inputs(self, pmem):
        fmt = RecordFormat()
        for n in (0, 1, 2, 3):
            _, system, result = sort_run(pmem, n, fmt, WiscSort(fmt))
            assert result.n_records == n

    def test_duplicate_keys(self, pmem):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = generate_dataset(machine, "input", 1_000, fmt, seed=1)
        data = f.peek().reshape(-1, fmt.record_size)
        data[:, : fmt.key_size] = data[0, : fmt.key_size]  # all keys equal
        f.poke(0, data.reshape(-1))
        result = WiscSort(fmt).run(machine, f)
        assert result.n_records == 1_000

    def test_already_sorted_input(self, pmem):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = generate_dataset(machine, "input", 1_000, fmt, seed=1)
        from repro.records.format import record_sort_indices

        data = f.peek().reshape(-1, fmt.record_size)
        f.poke(0, data[record_sort_indices(data, fmt.key_size)].reshape(-1))
        result = WiscSort(fmt).run(machine, f)
        assert result.n_records == 1_000

    def test_nonstandard_geometry(self, pmem):
        fmt = RecordFormat(key_size=4, value_size=28, pointer_size=4)
        _, _, result = sort_run(pmem, 2_000, fmt, WiscSort(fmt))
        assert result.n_records == 2_000

    def test_value_smaller_than_key(self, pmem):
        fmt = RecordFormat(key_size=10, value_size=6)
        _, _, result = sort_run(pmem, 2_000, fmt, WiscSort(fmt))
        assert result.n_records == 2_000

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(1, 400), seed=st.integers(0, 50))
    def test_random_sizes_property(self, pmem, n, seed):
        fmt = RecordFormat(key_size=6, value_size=10, pointer_size=4)
        sort_run(pmem, n, fmt, WiscSort(fmt), seed=seed)


class TestMergePass:
    @pytest.mark.parametrize("model", ALL_MODELS)
    def test_correct_under_every_concurrency_model(self, pmem, model):
        fmt = RecordFormat()
        system = WiscSort(
            fmt,
            config=SortConfig(concurrency=model),
            force_merge_pass=True,
            merge_chunk_entries=1_000,
        )
        _, system, result = sort_run(pmem, 5_000, fmt, system)
        assert system.used_merge_pass
        assert result.n_records == 5_000

    def test_many_runs(self, pmem):
        fmt = RecordFormat()
        system = WiscSort(fmt, force_merge_pass=True, merge_chunk_entries=300)
        _, system, result = sort_run(pmem, 5_000, fmt, system)
        assert system.used_merge_pass

    def test_indexmap_files_cleaned_up(self, pmem):
        fmt = RecordFormat()
        machine, _, _ = sort_run(
            pmem, 3_000, fmt,
            WiscSort(fmt, force_merge_pass=True, merge_chunk_entries=1_000),
        )
        assert not [name for name in machine.fs.list() if "indexmap" in name]

    def test_uneven_final_chunk(self, pmem):
        fmt = RecordFormat()
        system = WiscSort(fmt, force_merge_pass=True, merge_chunk_entries=999)
        sort_run(pmem, 2_500, fmt, system)


class TestPassSelection:
    def test_unbounded_dram_uses_one_pass(self, pmem):
        fmt = RecordFormat()
        system = WiscSort(fmt)
        sort_run(pmem, 2_000, fmt, system)
        assert system.used_merge_pass is False

    def test_small_dram_budget_forces_merge_pass(self, pmem):
        fmt = RecordFormat()
        n = 10_000
        # IndexMap is n*15 bytes; make the budget half of it.
        budget = n * fmt.index_entry_size // 2
        system = WiscSort(fmt, config=SortConfig(
            read_buffer=8192, write_buffer=8192))
        machine = Machine(profile=pmem, dram_budget=budget)
        f = generate_dataset(machine, "input", n, fmt, seed=0)
        system.run(machine, f)
        assert system.used_merge_pass is True

    def test_budget_just_fits_uses_one_pass(self, pmem):
        fmt = RecordFormat()
        n = 2_000
        budget = n * fmt.index_entry_size + 64 * 1024
        system = WiscSort(fmt, config=SortConfig(
            read_buffer=8192, write_buffer=8192))
        machine = Machine(profile=pmem, dram_budget=budget)
        f = generate_dataset(machine, "input", n, fmt, seed=0)
        system.run(machine, f)
        assert system.used_merge_pass is False


class TestErrors:
    def test_misaligned_input_rejected(self, pmem):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = machine.fs.create("input")
        f.poke(0, np.zeros(150, dtype=np.uint8))
        with pytest.raises(ConfigError):
            WiscSort(fmt).run(machine, f)

    def test_pointer_overflow_rejected(self, pmem):
        fmt = RecordFormat(key_size=2, value_size=2, pointer_size=1)
        machine = Machine(profile=pmem)
        f = generate_dataset(machine, "input", 300, fmt, seed=0)  # > 2^8
        with pytest.raises(ConfigError, match="pointer"):
            WiscSort(fmt).run(machine, f)


class TestResultFields:
    def test_phase_breakdown_present(self, pmem):
        fmt = RecordFormat()
        _, _, result = sort_run(pmem, 3_000, fmt)
        assert result.phase("RUN read") > 0
        assert result.phase("RECORD read") > 0
        assert result.phase("RUN write") > 0
        assert result.total_time > 0

    def test_traffic_counters(self, pmem):
        fmt = RecordFormat()
        _, _, result = sort_run(pmem, 3_000, fmt)
        file_bytes = 3_000 * fmt.record_size
        # OnePass writes the output exactly once.
        assert result.user_written == pytest.approx(file_bytes)
        assert result.internal_read > 0

    def test_summary_readable(self, pmem):
        fmt = RecordFormat()
        _, _, result = sort_run(pmem, 1_000, fmt)
        assert "wiscsort" in result.summary()
