"""Tests for the k-way cursor merge machinery.

The central property: driving cursors over any set of sorted runs with
the threshold-batch protocol reproduces the global sort exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kway import (
    RunCursor,
    merge_step,
    redistribute_on_drain,
    window_bytes_per_run,
)
from repro.errors import SimulationError
from repro.machine import Machine
from repro.records.format import key_sort_indices


def build_runs(machine, runs_data, entry_size):
    """Write each sorted run to a file; return the files."""
    files = []
    for i, run in enumerate(runs_data):
        f = machine.fs.create(f"run{i}")
        if run.size:
            f.poke(0, run.reshape(-1))
        files.append(f)
    return files


def drive_merge(machine, files, entry_size, key_size, window_bytes):
    """Run the full cursor protocol; return the merged entry matrix."""
    cursors = [
        RunCursor(f, entry_size, key_size, window_bytes) for f in files
    ]
    collected = []

    def driver():
        while any(not c.done for c in cursors):
            for cursor in cursors:
                if cursor.needs_refill:
                    data = yield cursor.refill_op(tag="merge")
                    cursor.accept(data)
            emitted, _ways = merge_step(cursors)
            if emitted.shape[0]:
                collected.append(emitted)
            redistribute_on_drain(cursors)

    machine.run(driver())
    if not collected:
        return np.zeros((0, entry_size), dtype=np.uint8)
    return np.concatenate(collected, axis=0)


@st.composite
def sorted_runs(draw):
    key_size = draw(st.integers(1, 4))
    entry_size = key_size + draw(st.integers(0, 4))
    n_runs = draw(st.integers(1, 5))
    runs = []
    for _ in range(n_runs):
        n = draw(st.integers(0, 30))
        raw = draw(
            st.lists(
                st.binary(min_size=entry_size, max_size=entry_size),
                min_size=n,
                max_size=n,
            )
        )
        if raw:
            mat = np.frombuffer(b"".join(raw), dtype=np.uint8).reshape(n, entry_size)
            mat = mat[key_sort_indices(mat[:, :key_size])]
        else:
            mat = np.zeros((0, entry_size), dtype=np.uint8)
        runs.append(mat)
    return key_size, entry_size, runs


class TestMergeCorrectness:
    @settings(max_examples=60, deadline=None)
    @given(data=sorted_runs(), window=st.integers(1, 64))
    def test_merge_equals_global_sort(self, pmem, data, window):
        key_size, entry_size, runs = data
        machine = Machine(profile=pmem)
        files = build_runs(machine, runs, entry_size)
        window_bytes = max(entry_size, window)
        merged = drive_merge(machine, files, entry_size, key_size, window_bytes)
        everything = (
            np.concatenate([r for r in runs], axis=0)
            if any(r.size for r in runs)
            else np.zeros((0, entry_size), dtype=np.uint8)
        )
        expected = everything[key_sort_indices(everything[:, :key_size])]
        got = [bytes(row) for row in merged]
        want = sorted([bytes(row) for row in expected])
        assert sorted(got) == want  # same multiset
        keys = [bytes(row[:key_size]) for row in merged]
        assert keys == sorted(keys)  # emitted in key order

    def test_single_run_passthrough(self, pmem):
        machine = Machine(profile=pmem)
        run = np.array([[1, 10], [2, 20], [3, 30]], dtype=np.uint8)
        files = build_runs(machine, [run], 2)
        merged = drive_merge(machine, files, 2, 1, window_bytes=4)
        assert np.array_equal(merged, run)

    def test_tiny_windows_still_correct(self, pmem):
        machine = Machine(profile=pmem)
        rng = np.random.default_rng(3)
        runs = []
        for _ in range(3):
            mat = rng.integers(0, 256, size=(40, 5), dtype=np.uint8)
            runs.append(mat[key_sort_indices(mat[:, :2])])
        files = build_runs(machine, runs, 5)
        merged = drive_merge(machine, files, 5, 2, window_bytes=5)  # 1 entry!
        keys = [bytes(r[:2]) for r in merged]
        assert keys == sorted(keys)
        assert merged.shape[0] == 120


class TestCursor:
    def test_refill_protocol(self, pmem):
        machine = Machine(profile=pmem)
        f = machine.fs.create("run")
        f.poke(0, np.arange(20, dtype=np.uint8))
        cursor = RunCursor(f, entry_size=4, key_size=2, window_bytes=8)

        def job():
            assert cursor.needs_refill
            data = yield cursor.refill_op(tag="r")
            cursor.accept(data)

        machine.run(job())
        assert cursor.window.shape == (2, 4)
        assert not cursor.needs_refill
        assert not cursor.file_exhausted

    def test_refill_on_full_window_rejected(self, pmem):
        machine = Machine(profile=pmem)
        f = machine.fs.create("run")
        f.poke(0, np.zeros(8, dtype=np.uint8))
        cursor = RunCursor(f, 4, 2, 8)

        def job():
            data = yield cursor.refill_op(tag="r")
            cursor.accept(data)

        machine.run(job())
        with pytest.raises(SimulationError):
            cursor.refill_op(tag="r")

    def test_take_consumes_window(self, pmem):
        machine = Machine(profile=pmem)
        f = machine.fs.create("run")
        f.poke(0, np.arange(12, dtype=np.uint8))
        cursor = RunCursor(f, 4, 2, 12)

        def job():
            data = yield cursor.refill_op(tag="r")
            cursor.accept(data)

        machine.run(job())
        taken = cursor.take(2)
        assert taken.shape == (2, 4)
        assert cursor.window.shape == (1, 4)

    def test_done_lifecycle(self, pmem):
        machine = Machine(profile=pmem)
        f = machine.fs.create("run")
        f.poke(0, np.zeros(4, dtype=np.uint8))
        cursor = RunCursor(f, 4, 2, 4)
        assert not cursor.done

        def job():
            data = yield cursor.refill_op(tag="r")
            cursor.accept(data)

        machine.run(job())
        assert cursor.file_exhausted
        assert not cursor.done
        cursor.take(1)
        assert cursor.done


class TestBufferManagement:
    def test_window_bytes_per_run_alignment(self):
        assert window_bytes_per_run(100, 3, entry_size=15) == 30
        assert window_bytes_per_run(10, 3, entry_size=15) == 15  # floor 1 entry

    def test_window_bytes_invalid_runs(self):
        with pytest.raises(SimulationError):
            window_bytes_per_run(100, 0, 15)

    def test_redistribute_grows_live_cursors(self, pmem):
        machine = Machine(profile=pmem)
        fa = machine.fs.create("a")
        fb = machine.fs.create("b")
        fa.poke(0, np.zeros(4, dtype=np.uint8))
        fb.poke(0, np.zeros(40, dtype=np.uint8))
        a = RunCursor(fa, 4, 2, 4)
        b = RunCursor(fb, 4, 2, 4)

        def job():
            data = yield a.refill_op(tag="r")
            a.accept(data)

        machine.run(job())
        a.take(1)  # a now done
        before = b.window_entries
        redistribute_on_drain([a, b])
        assert b.window_entries > before
        assert a.window_entries == 0
