"""Smoke tests for the experiment harness at heavily reduced scale.

The full-scale runs (and the paper-shape assertions on them) live in
``benchmarks/``; here we only verify every experiment builds its table.
"""

from __future__ import annotations


from repro.bench import (
    fig01_motivation,
    fig04_sortbenchmark,
    fig07_concurrency,
    fig08_kv_split,
    fig09_strided_vs_seq,
    fig10_interference,
    fig11_future_devices,
    tab01_compliance,
)

SMOKE_SCALE = 20_000  # 400M-record experiments shrink to 20k records


class TestHarnessSmoke:
    def test_tab01_matches_paper_matrix(self):
        table = tab01_compliance()
        assert len(table.rows) == 6
        wisc = [row for row in table.rows if row[0] == "wiscsort"][0]
        assert wisc[1:] == ["yes"] * 5
        pmsort = [row for row in table.rows if row[0] == "pmsort"][0]
        assert pmsort[1:] == ["yes", "-", "yes", "-", "-"]

    def test_fig01_builds(self):
        table = fig01_motivation(scale=SMOKE_SCALE)
        assert len(table.rows) == 4

    def test_fig04_builds(self):
        table = fig04_sortbenchmark(scale=SMOKE_SCALE, paper_gbs=(40, 160))
        assert len(table.rows) == 4
        passes = table.column("pass")
        assert passes[1] == "one" and passes[3] == "merge"

    def test_fig07_builds(self):
        table = fig07_concurrency(scale=SMOKE_SCALE)
        assert len(table.rows) == 9

    def test_fig08_builds(self):
        table = fig08_kv_split(scale=SMOKE_SCALE, value_sizes=(10, 90))
        assert len(table.rows) == 2

    def test_fig09_builds(self):
        table = fig09_strided_vs_seq(scale=SMOKE_SCALE, value_sizes=(90,))
        assert len(table.rows) == 1

    def test_fig10_builds(self):
        table = fig10_interference(scale=SMOKE_SCALE, client_counts=(0, 4))
        assert len(table.rows) == 4

    def test_fig11_builds(self):
        table = fig11_future_devices(scale=SMOKE_SCALE, devices=("brd-device",))
        assert len(table.rows) == 5

    def test_tables_render(self):
        text = tab01_compliance().render()
        assert "BRAID" in text


class TestAblationSmoke:
    def test_write_pool_sweep_builds(self):
        from repro.bench import ablation_write_pool

        table = ablation_write_pool(scale=SMOKE_SCALE, pool_sizes=(1, 5))
        assert len(table.rows) == 2

    def test_dram_budget_sweep_builds(self):
        from repro.bench import ablation_dram_budget

        table = ablation_dram_budget(
            scale=SMOKE_SCALE, budget_fractions=(0.5, 1.25)
        )
        passes = table.column("pass")
        assert passes == ["merge", "one"]

    def test_merge_fanin_builds(self):
        from repro.bench import ablation_merge_fanin

        table = ablation_merge_fanin(
            scale=SMOKE_SCALE, read_buffers=(4 * 1024, 64 * 1024)
        )
        assert len(table.rows) == 2

    def test_natural_runs_builds(self):
        from repro.bench import ablation_natural_runs

        table = ablation_natural_runs(
            scale=SMOKE_SCALE, presorted_fractions=(1.0,)
        )
        assert len(table.rows) == 2  # pmem + bard
