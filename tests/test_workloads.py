"""Tests for background clients and dataset sizing."""

from __future__ import annotations

import pytest

from repro.core.wiscsort import WiscSort
from repro.errors import ConfigError
from repro.machine import Machine
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.workloads.background import BackgroundClients
from repro.workloads.datasets import sortbenchmark_records_for_gb


class TestBackgroundClients:
    def _sort_with_bg(self, pmem, kind, clients, n=20_000):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = generate_dataset(machine, "input", n, fmt, seed=1)
        if clients:
            BackgroundClients(machine, clients, kind).start()
        return WiscSort(fmt).run(machine, f, validate=False).total_time

    def test_writers_slow_down_sorting(self, pmem):
        base = self._sort_with_bg(pmem, "write", 0)
        loaded = self._sort_with_bg(pmem, "write", 8)
        assert loaded > 1.5 * base

    def test_readers_slow_down_less_than_writers(self, pmem):
        base = self._sort_with_bg(pmem, "read", 0)
        readers = self._sort_with_bg(pmem, "read", 4)
        writers = self._sort_with_bg(pmem, "write", 4)
        assert base < readers < writers

    def test_slowdown_monotone_in_client_count(self, pmem):
        times = [self._sort_with_bg(pmem, "write", c) for c in (0, 2, 8)]
        assert times[0] < times[1] < times[2]

    def test_clock_stops_with_foreground(self, pmem):
        fmt = RecordFormat()
        machine = Machine(profile=pmem)
        f = generate_dataset(machine, "input", 5_000, fmt, seed=1)
        BackgroundClients(machine, 2, "read").start()
        result = WiscSort(fmt).run(machine, f, validate=False)
        # The clock reads the sort's completion time, not the clients'.
        assert machine.now == pytest.approx(result.total_time)

    def test_invalid_kind_rejected(self, pmem):
        machine = Machine(profile=pmem)
        with pytest.raises(ConfigError):
            BackgroundClients(machine, 1, "scribble")

    def test_zero_clients_is_noop(self, pmem):
        machine = Machine(profile=pmem)
        clients = BackgroundClients(machine, 0, "read")
        clients.start()
        assert machine.now == 0.0


class TestDatasetSizing:
    def test_default_scale(self):
        assert sortbenchmark_records_for_gb(40) == 400_000
        assert sortbenchmark_records_for_gb(200) == 2_000_000

    def test_custom_scale(self):
        assert sortbenchmark_records_for_gb(10, scale=10_000) == 10_000

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigError):
            sortbenchmark_records_for_gb(0)
        with pytest.raises(ConfigError):
            sortbenchmark_records_for_gb(10, scale=0)
