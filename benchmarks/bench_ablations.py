"""Ablation benchmarks for the design choices DESIGN.md Sec 6 lists.

Not figures from the paper -- these isolate individual WiscSort design
decisions and verify the claims the paper makes about them in passing.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import parse_ms, run_once
from repro.bench import (
    ablation_buffer_size,
    ablation_compression,
    ablation_dram_budget,
    ablation_pointer_size,
    ablation_write_pool,
)


def test_ablation_write_pool(benchmark, bench_scale):
    """Pool sizing matters: PMEM writes peak near 5 threads (Sec 3.8)."""
    table = run_once(benchmark, ablation_write_pool, scale=bench_scale)
    print()
    print(table.render())
    times = {row[0]: parse_ms(row[1]) for row in table.rows}
    best = min(times, key=times.get)
    assert best in (5, 8)
    # Both ends of the sweep are clearly worse than the optimum.
    assert times[1] > 1.5 * times[best]
    assert times[32] > 1.2 * times[best]


def test_ablation_pointer_size(benchmark, bench_scale):
    """5B pointers cut run-file write traffic ~7x vs EMS; 8B ~5x
    (paper Sec 3.3 footnote)."""
    table = run_once(benchmark, ablation_pointer_size, scale=bench_scale)
    print()
    print(table.render())
    rows = {row[0]: row for row in table.rows}
    red5 = float(str(rows[5][3]).rstrip("x"))
    red8 = float(str(rows[8][3]).rstrip("x"))
    assert 6.0 <= red5 <= 7.5
    assert 4.5 <= red8 <= 6.0
    # Wider pointers cost a little time, not a lot.
    assert parse_ms(rows[8][1]) <= 1.1 * parse_ms(rows[5][1])


def test_ablation_dram_budget(benchmark, bench_scale):
    """The OnePass/MergePass crossover sits at budget == IndexMap size."""
    table = run_once(benchmark, ablation_dram_budget, scale=bench_scale)
    print()
    print(table.render())
    rows = {row[0]: (row[1], parse_ms(row[2])) for row in table.rows}
    assert rows["0.50"][0] == "merge"
    assert rows["1.00"][0] == "one"
    # MergePass costs extra versus OnePass.
    assert rows["0.50"][1] > rows["1.00"][1]


def test_ablation_buffer_size(benchmark, bench_scale):
    """Paper Sec 3.8: "The size of the write buffer has no performance
    significance"."""
    table = run_once(benchmark, ablation_buffer_size, scale=bench_scale)
    print()
    print(table.render())
    times = [parse_ms(row[1]) for row in table.rows]
    assert max(times) <= 1.05 * min(times)


def test_ablation_compression(benchmark, bench_scale):
    """Sec 5: compression is worthwhile only when I/O savings beat CPU
    cost -- on PMEM with zlib it is not, and the prediction agrees with
    the measurement."""
    table = run_once(benchmark, ablation_compression, scale=bench_scale)
    print()
    print(table.render())
    rows = {row[0]: row for row in table.rows}
    # Uniform gensort keys barely compress.
    assert float(rows["uniform keys"][3]) < 1.3
    # Skewed keys compress well...
    assert float(rows["skewed keys"][3]) > 1.8
    # ...yet the criterion says "not worthwhile" on PMEM, and indeed
    # compression does not beat the plain run.
    for label in ("uniform keys", "skewed keys"):
        assert rows[label][4] == "not worthwhile"
        assert parse_ms(rows[label][2]) >= 0.95 * parse_ms(rows[label][1])


def test_ablation_natural_runs(benchmark, bench_scale):
    """Natural-run elision (MONTRES/NVMSorting idea, Sec 6): a win on
    write-asymmetric devices, ~neutral on PMEM -- quantifying why the
    paper keeps WiscSort distribution-agnostic."""
    from repro.bench import ablation_natural_runs

    table = run_once(benchmark, ablation_natural_runs, scale=bench_scale)
    print()
    print(table.render())
    rows = {(r[0], r[1]): r for r in table.rows}
    # Fully presorted input on BARD: elision clearly wins.
    bard = rows[("bard-device", "100%")]
    assert parse_ms(bard[3]) < parse_ms(bard[2])
    # Random input: identical behaviour (no natural chunks detected).
    for device in ("pmem", "bard-device"):
        r = rows[(device, "0%")]
        assert r[4] == 0
        assert parse_ms(r[3]) == pytest.approx(parse_ms(r[2]), rel=1e-6)
    # PMEM stays within a few percent either way (neutral).
    pm = rows[("pmem", "100%")]
    assert parse_ms(pm[3]) <= 1.1 * parse_ms(pm[2])


def test_ablation_merge_fanin(benchmark, bench_scale):
    """Multi-phase merging: EMS pays (1+M) x dataset in writes; WiscSort's
    intermediate phases move only key-pointer entries (Sec 2.1/2.4.1)."""
    from repro.bench import ablation_merge_fanin

    table = run_once(benchmark, ablation_merge_fanin, scale=bench_scale)
    print()
    print(table.render())
    rows = [dict(zip(table.headers, r)) for r in table.rows]
    for r in rows:
        # EMS write traffic follows the paper's (1 + M) formula.
        assert float(r["ems writes/dataset"]) == pytest.approx(
            1 + r["ems M"], rel=0.05
        )
    # More phases -> strictly more EMS time; WiscSort barely moves.
    ems_times = [parse_ms(r["ems ms"]) for r in rows]
    assert ems_times == sorted(ems_times, reverse=True)
    wisc_times = [parse_ms(r["wiscsort ms"]) for r in rows]
    assert max(wisc_times) <= 1.5 * min(wisc_times)
