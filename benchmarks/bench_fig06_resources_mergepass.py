"""Figure 6: resource usage of EMS vs WiscSort MergePass (160 GB sort).

Paper: MergePass loads far fewer bytes in its merge phase -- with the
160 GB dataset, WiscSort's MERGE read time is ~7x smaller than EMS's,
because only key-pointer IndexMaps (15 B/record) stream through the read
buffer instead of whole 100 B records; and MERGE writes dominate
MergePass's total time.
"""

from __future__ import annotations

from benchmarks.conftest import parse_ms, run_once
from repro.bench import fig06_resources_mergepass


def test_fig06_resources_mergepass(benchmark, bench_scale):
    table = run_once(benchmark, fig06_resources_mergepass, scale=bench_scale)
    print()
    print(table.render())

    rows = [dict(zip(table.headers, row)) for row in table.rows]

    def busy(system, tag):
        for r in rows:
            if r["system"] == system and r["tag"] == tag:
                return parse_ms(r["busy ms"])
        return 0.0

    # MERGE read ~7x smaller for MergePass (paper: "7x smaller").
    ratio = busy("ems", "MERGE read") / busy("wiscsort-mergepass", "MERGE read")
    assert 4.0 <= ratio <= 10.0

    # MERGE write dominates WiscSort MergePass (paper Sec 4.1).
    wisc_tags = [r for r in rows if r["system"] == "wiscsort-mergepass"]
    merge_write = busy("wiscsort-mergepass", "MERGE write")
    assert merge_write == max(parse_ms(r["busy ms"]) for r in wisc_tags)

    # EMS total write time ~1.5x MergePass's (paper Sec 4.1).
    ems_writes = busy("ems", "RUN write") + busy("ems", "MERGE write")
    wisc_writes = busy("wiscsort-mergepass", "RUN write") + merge_write
    assert 1.3 <= ems_writes / wisc_writes <= 2.2

    # I/O efficiency stays high for every phase of both systems.
    for r in rows:
        assert float(r["peak-class eff."].rstrip("%")) >= 85
