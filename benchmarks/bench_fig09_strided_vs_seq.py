"""Figure 9: loading the IndexMap via strided vs sequential reads.

Paper: strided gather of keys beats sequentially reading whole records
(PMSort-style) at every V:K ratio, reaching ~3x for 502 B values; the
benefit shrinks as the value size approaches the key size.
"""

from __future__ import annotations

from benchmarks.conftest import parse_speedup, run_once
from repro.bench import fig09_strided_vs_seq


def test_fig09_strided_vs_seq(benchmark, bench_scale):
    table = run_once(benchmark, fig09_strided_vs_seq, scale=bench_scale)
    print()
    print(table.render())

    rows = [dict(zip(table.headers, row)) for row in table.rows]
    by_value = {r["value B"]: parse_speedup(r["strided speedup"]) for r in rows}

    # Strided gather wins at every V:K ratio (R property).
    for v, s in by_value.items():
        assert s > 1.0, (v, s)

    # Benefit grows with the value size, reaching ~3x at V=502.
    speedups = [parse_speedup(r["strided speedup"]) for r in rows]
    assert speedups == sorted(speedups)
    assert 2.5 <= by_value[502] <= 3.6

    # Benefit is modest when key and value sizes are close (paper: the
    # sequential/strided difference is "reduced" around V=50-90).
    assert by_value[50] <= 2.0
