"""Figure 7: concurrency & interference optimisations (400M records).

Paper orderings this bench asserts:

* within every family, no-io-overlap < io-overlap < no-sync (time);
* EMS no-io-overlap ~25% faster than EMS no-sync;
* WiscSort OnePass ~7x and MergePass ~4x faster than single-threaded
  PMSort; MergePass no-io-overlap ~33% faster than the best PMSort+.
"""

from __future__ import annotations

from benchmarks.conftest import parse_ms, run_once
from repro.bench import fig07_concurrency


def test_fig07_concurrency(benchmark, bench_scale):
    table = run_once(benchmark, fig07_concurrency, scale=bench_scale)
    print()
    print(table.render())

    times = {
        row[0]: parse_ms(row[1]) for row in table.rows
    }

    # Family orderings (Fig 2c < 2b < 2a).
    assert (
        times["wiscsort-mp no-io-overlap"]
        < times["wiscsort-mp io-overlap"]
        < times["wiscsort-mp no-sync"]
    )
    assert times["ems no-io-overlap"] < times["ems no-sync"]
    assert times["pmsort+ io-overlap"] < times["pmsort+ no-sync"]

    # Controlled EMS vs uncontrolled EMS: ~10-35% gap.
    gap = times["ems no-sync"] / times["ems no-io-overlap"]
    assert 1.05 <= gap <= 1.45

    # PMSort single-thread vs WiscSort (paper: 7x OnePass, 4x MergePass).
    assert 5.0 <= times["pmsort single-thread"] / times["wiscsort onepass"] <= 10.0
    assert 3.0 <= times["pmsort single-thread"] / times["wiscsort-mp no-io-overlap"] <= 7.0

    # MergePass no-io-overlap vs hypothetical best PMSort+ (~33% faster).
    best_pmsort_plus = min(times["pmsort+ no-sync"], times["pmsort+ io-overlap"])
    assert 1.15 <= best_pmsort_plus / times["wiscsort-mp no-io-overlap"] <= 1.6

    # Key-value separation alone helps: PMSort+ beats equivalent EMS.
    assert times["pmsort+ no-sync"] < times["ems no-sync"]
