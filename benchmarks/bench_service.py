"""Open-loop service benchmark: offered load vs. achieved throughput.

Sweeps the offered arrival rate across a grid for each admission policy
and reports, per cell, the achieved completion rate and the
latency p50/p99/p999 -- the classic *throughput knee* picture: below
saturation achieved tracks offered and p99 stays flat; past the knee a
work-conserving policy (fifo/edf) lets latency diverge while shedding
policies (shed/backpressure) trade completions for flat tails.

The whole sweep is a pure function of ``--seed``: the arrival streams,
job datasets and simulated service are all deterministic, so two runs
produce byte-identical tables and JSON (the CI service job asserts
exactly that with ``cmp``).

Not a pytest module -- run it as a script::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py \
        --output BENCH_service.json --quick
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional

from repro.api import RunOptions, serve

# ----------------------------------------------------------------------
# Frozen sweep definition: small jobs, a DRAM budget that admits ~3
# concurrently, and rates that straddle the service's saturation point.
# ----------------------------------------------------------------------
RECORDS_PER_JOB = 2_000
DRAM_BUDGET = 48_000_000
HORIZON = 0.004
DEADLINE = 0.0005
QUEUE_CAP = 8

FULL_RATES = (5_000.0, 20_000.0, 40_000.0, 80_000.0, 160_000.0)
QUICK_RATES = (20_000.0, 80_000.0)

POLICY_GRID = ("fifo", "fair", "edf", "backpressure", "shed")

#: A cell counts as "keeping up" while achieved >= KNEE_FRACTION x offered.
KNEE_FRACTION = 0.95


def run_cell(policy: str, rate: float, seed: int) -> Dict[str, float]:
    report = serve(
        RunOptions(
            records=RECORDS_PER_JOB,
            seed=seed,
            dram_budget=DRAM_BUDGET,
        ),
        rate=rate,
        horizon=HORIZON,
        policy=policy,
        queue_cap=QUEUE_CAP,
        deadline=DEADLINE,
    )
    lat = report.percentiles["latency"]
    return {
        "policy": policy,
        "rate": rate,
        "offered": report.offered_rate,
        "achieved": report.achieved_rate,
        "arrived": report.jobs_arrived,
        "completed": report.jobs_completed,
        "shed": report.jobs_shed,
        "deadline_misses": report.deadline_misses,
        "p50": lat["p50"],
        "p99": lat["p99"],
        "p999": lat["p999"],
    }


def find_knee(cells: List[Dict[str, float]]) -> Optional[float]:
    """Largest offered rate where the policy still keeps up."""
    knee = None
    for cell in cells:
        if cell["offered"] > 0 and \
                cell["achieved"] >= KNEE_FRACTION * cell["offered"]:
            knee = cell["rate"]
    return knee


def render_table(results: Dict[str, List[Dict[str, float]]]) -> str:
    lines = [
        "service load sweep (offered vs achieved jobs/s, latency in s)",
        f"{'policy':<14} {'rate':>9} {'offered':>10} {'achieved':>10} "
        f"{'shed':>5} {'miss':>5} {'p50':>11} {'p99':>11} {'p999':>11}",
    ]
    for policy, cells in results.items():
        for cell in cells:
            lines.append(
                f"{policy:<14} {cell['rate']:>9.0f} "
                f"{cell['offered']:>10.6g} {cell['achieved']:>10.6g} "
                f"{cell['shed']:>5d} {cell['deadline_misses']:>5d} "
                f"{cell['p50']:>11.6g} {cell['p99']:>11.6g} "
                f"{cell['p999']:>11.6g}"
            )
        knee = find_knee(cells)
        knee_s = f"{knee:.0f} jobs/s" if knee is not None else "below grid"
        lines.append(f"{policy:<14} knee: achieved tracks offered up to "
                     f"{knee_s}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--quick", action="store_true",
                        help="two rates instead of five (CI)")
    parser.add_argument("--policies", default=None,
                        metavar="NAME[,NAME...]",
                        help="subset of the policy grid to sweep")
    parser.add_argument("--output", metavar="PATH", default=None,
                        help="write the sweep as deterministic JSON")
    args = parser.parse_args(argv)

    rates = QUICK_RATES if args.quick else FULL_RATES
    policies = (
        tuple(p.strip() for p in args.policies.split(","))
        if args.policies else POLICY_GRID
    )
    results: Dict[str, List[Dict[str, float]]] = {}
    for policy in policies:
        results[policy] = [
            run_cell(policy, rate, args.seed) for rate in rates
        ]
    print(render_table(results))
    if args.output:
        doc = {
            "seed": args.seed,
            "records_per_job": RECORDS_PER_JOB,
            "dram_budget": DRAM_BUDGET,
            "horizon": HORIZON,
            "rates": list(rates),
            "results": results,
            "knees": {p: find_knee(c) for p, c in results.items()},
        }
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
