"""Figure 4: WiscSort vs external merge sort on sortbenchmark workloads.

Paper: 40-200 GB inputs; OnePass up to 3x and MergePass up to 2x faster
than the concurrency-optimised EMS; the speedup is roughly constant
across file sizes; the OnePass->MergePass knee falls where the IndexMap
stops fitting the 20 GB DRAM cap (between 120 and 160 GB).
"""

from __future__ import annotations

from benchmarks.conftest import parse_ms, parse_speedup, run_once
from repro.bench import fig04_sortbenchmark


def test_fig04_sortbenchmark(benchmark, bench_scale):
    table = run_once(benchmark, fig04_sortbenchmark, scale=bench_scale)
    print()
    print(table.render())

    rows = [dict(zip(table.headers, row)) for row in table.rows]
    wisc_rows = [r for r in rows if r["system"] == "wiscsort"]
    ems_rows = [r for r in rows if r["system"] == "ems"]

    # Pass selection knee: OnePass through 120 GB, MergePass beyond.
    passes = {r["paper GB"]: r["pass"] for r in wisc_rows}
    assert passes[40] == "one" and passes[120] == "one"
    assert passes[160] == "merge" and passes[200] == "merge"

    # Speedups: OnePass ~3x band, MergePass ~2x band.
    for r in wisc_rows:
        s = parse_speedup(r["speedup"])
        if r["pass"] == "one":
            assert 2.0 <= s <= 4.0, (r["paper GB"], s)
        else:
            assert 1.5 <= s <= 3.0, (r["paper GB"], s)

    # Speedup roughly constant within each pass type (<= 25% spread).
    one = [parse_speedup(r["speedup"]) for r in wisc_rows if r["pass"] == "one"]
    assert max(one) / min(one) <= 1.25

    # EMS total write time is ~2x WiscSort OnePass's (paper Sec 4.1).
    ems40 = next(r for r in ems_rows if r["paper GB"] == 40)
    wisc40 = next(r for r in wisc_rows if r["paper GB"] == 40)
    ems_writes = parse_ms(ems40["RUN write"]) + parse_ms(ems40["MERGE write"])
    wisc_writes = parse_ms(wisc40["RUN write"]) + parse_ms(wisc40["MERGE write"])
    assert 1.8 <= ems_writes / wisc_writes <= 2.2

    # Totals scale roughly linearly with input size for both systems.
    ems_total = {r["paper GB"]: parse_ms(r["total"]) for r in ems_rows}
    assert 4.0 <= ems_total[200] / ems_total[40] <= 6.5
