"""Figure 1: problems of different sorting approaches on PMEM.

Paper: 20 GB / 200M records of (10 B key, 90 B value).  In-place sample
sort is ~2x slower than external merge sort; WiscSort is fastest; and
in-place sorting on DRAM is ~10x faster than in-place sorting on PMEM.
"""

from __future__ import annotations

from benchmarks.conftest import parse_ms, run_once
from repro.bench import fig01_motivation


def test_fig01_motivation(benchmark, bench_scale):
    table = run_once(benchmark, fig01_motivation, scale=bench_scale)
    print()
    print(table.render())

    times = dict(zip(table.column("system"), map(parse_ms, table.column("time (ms, simulated)"))))
    sample_pmem = times["in-place sample sort (PMEM)"]
    ems = times["external merge sort"]
    wisc = times["wiscsort"]
    sample_dram = times["in-place sample sort (DRAM)"]

    # EMS ~2x faster than in-place sample sort (Sec 2.4.1).
    assert 1.4 <= sample_pmem / ems <= 3.0
    # WiscSort fastest of the PMEM systems (2-3x over EMS, Fig 1/4).
    assert wisc < ems
    assert 1.7 <= ems / wisc <= 4.0
    # In-place on DRAM ~10x faster than in-place on PMEM.
    assert 5.0 <= sample_pmem / sample_dram <= 15.0
