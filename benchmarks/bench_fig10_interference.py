"""Figure 10: robustness under background I/O interference.

Paper: background *writers* hurt far more than background readers
(writes scale poorly on PMEM); WiscSort remains ~2x faster than EMS
regardless of the interference intensity; WiscSort's random reads make
it *more* sensitive to background random readers than EMS.

Known deviation (recorded in EXPERIMENTS.md): the paper reports up to
14x slowdown with 8 background writers; our interference model tops out
around 3-4x.  The orderings and monotonic trends all hold.
"""

from __future__ import annotations

from benchmarks.conftest import parse_ms, parse_speedup, run_once
from repro.bench import fig10_interference


def test_fig10_interference(benchmark, bench_scale):
    table = run_once(benchmark, fig10_interference, scale=bench_scale)
    print()
    print(table.render())

    rows = [dict(zip(table.headers, row)) for row in table.rows]

    def slowdown(kind, clients, system):
        for r in rows:
            if r["kind"] == kind and r["clients"] == clients:
                return parse_speedup(r[f"{system} slowdown"])
        raise KeyError((kind, clients))

    # Slowdown grows monotonically with client count for both kinds.
    for kind in ("read", "write"):
        for system in ("wiscsort", "ems"):
            series = [slowdown(kind, c, system) for c in (0, 1, 2, 4, 8)]
            assert series == sorted(series), (kind, system, series)

    # Writers hurt much more than readers at every client count.
    for system in ("wiscsort", "ems"):
        assert slowdown("write", 8, system) > 1.5 * slowdown("read", 8, system)

    # WiscSort (random reads) degrades more than EMS under background
    # readers (paper: 45% vs 25% at 8 random readers).
    assert slowdown("read", 8, "wiscsort") > slowdown("read", 8, "ems")

    # WiscSort stays ~2x faster than EMS at every interference level.
    for r in rows:
        ratio = parse_ms(r["ems ms"]) / parse_ms(r["wiscsort ms"])
        assert ratio >= 1.7, (r["kind"], r["clients"], ratio)
