"""Figure 8: key-value splitting benefit across V:K ratios.

Paper: OnePass beats EMS at *every* value size; MergePass beats EMS only
when V:K > 1 (it loses at V <= K because small random value reads are
inefficient); the gap grows with the value size.
"""

from __future__ import annotations

from benchmarks.conftest import parse_speedup, run_once
from repro.bench import fig08_kv_split


def test_fig08_kv_split(benchmark, bench_scale):
    table = run_once(benchmark, fig08_kv_split, scale=bench_scale)
    print()
    print(table.render())

    rows = [dict(zip(table.headers, row)) for row in table.rows]
    by_value = {r["value B"]: r for r in rows}

    # OnePass outperforms EMS regardless of the V:K ratio.
    for r in rows:
        assert parse_speedup(r["onepass speedup"]) > 1.0, r["value B"]

    # MergePass outperforms EMS iff V:K > 1 (key is 10 B).
    assert parse_speedup(by_value[10]["mergepass speedup"]) < 1.0
    for v in (50, 90, 256, 502):
        assert parse_speedup(by_value[v]["mergepass speedup"]) > 1.0, v

    # The gap grows with the value size for both passes.
    one = [parse_speedup(r["onepass speedup"]) for r in rows]
    merge = [parse_speedup(r["mergepass speedup"]) for r in rows]
    assert one == sorted(one)
    assert merge == sorted(merge)

    # Large-value speedups approach the paper's 3x (OnePass) / 2x+ bands.
    assert parse_speedup(by_value[502]["onepass speedup"]) >= 2.5
    assert parse_speedup(by_value[502]["mergepass speedup"]) >= 2.0
