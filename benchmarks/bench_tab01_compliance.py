"""Table 1: sorting systems' compliance with the BRAID model."""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import tab01_compliance


def test_tab01_compliance(benchmark):
    table = run_once(benchmark, tab01_compliance)
    print()
    print(table.render())

    rows = {row[0]: row[1:] for row in table.rows}
    # WiscSort complies with all five properties.
    assert rows["wiscsort"] == ["yes"] * 5
    # The I+D-aware EMS used in the evaluation has exactly I and D.
    assert rows["external merge sort"] == ["-", "-", "-", "yes", "yes"]
    # Naive EMS complies with nothing.
    assert rows["external merge sort (naive)"] == ["-"] * 5
    # PMSort: B and A only (Sec 2.4.3 / Table 1).
    assert rows["pmsort"] == ["yes", "-", "yes", "-", "-"]
    # In-place sample sort: B and R.
    assert rows["in-place sample sort"] == ["yes", "yes", "-", "-", "-"]
    # Modified-key sort [44]: A only.
    assert rows["modified-key sort"] == ["-", "-", "yes", "-", "-"]
