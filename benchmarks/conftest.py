"""Benchmark harness configuration.

Each benchmark module reproduces one table/figure: it runs the
experiment once under pytest-benchmark (the workloads are deterministic
simulations -- repetition adds nothing), prints the table the paper
reports, and asserts the paper's qualitative shape.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

#: Scale divisor applied to the paper's record counts (see DESIGN.md).
BENCH_SCALE = 1_000


@pytest.fixture(scope="session")
def bench_scale() -> int:
    return BENCH_SCALE


def run_once(benchmark, fn, *args, **kwargs):
    """Execute ``fn`` exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def parse_ms(cell: str) -> float:
    return float(cell)


def parse_speedup(cell: str) -> float:
    return float(str(cell).rstrip("x"))
