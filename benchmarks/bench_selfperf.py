"""Simulator self-performance benchmark: how fast does the *simulator* run?

Unlike the ``bench_fig*`` experiments (which check simulated results
against the paper), this harness measures the wall-clock throughput of
the simulation kernel itself on two frozen WiscSort workloads:

* **OnePass** -- 50k records, big read buffer, no merge phase, quiet
  device.  Dominated by op-construction and stats overhead.
* **MergePass** -- 200k records, 96 KiB read buffer forcing a 134-way
  merge with 8 background writer clients.  Dominated by the fluid
  re-rating / k-way merge hot paths; this is the workload the kernel
  optimisations target.

It writes ``BENCH_selfperf.json`` so every future PR can track
events/sec and sim-seconds-per-wall-second, verifies the simulated
results are unchanged against the frozen pre-overhaul baseline
fingerprints below, and (with ``--check``) gates CI on a >2x wall-clock
regression versus the committed JSON.

Not a pytest module -- run it as a script::

    PYTHONPATH=src python benchmarks/bench_selfperf.py
    PYTHONPATH=src python benchmarks/bench_selfperf.py --check BENCH_selfperf.json

The kernel path is inherited from ``REPRO_SIM_VECTOR`` (vector on by
default); CI runs the bench under both values and feeds the two JSONs
to ``--compare``, which demands bit-identical fingerprint blocks.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import struct
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.base import SortConfig
from repro.core.wiscsort import WiscSort
from repro.machine import Machine
from repro.perf import collect_counters
from repro.records.format import RecordFormat
from repro.records.gensort import generate_dataset
from repro.sim.fluid import vector_enabled
from repro.units import KiB, MiB
from repro.workloads.background import BackgroundClients

# ----------------------------------------------------------------------
# Frozen workload definitions.  Changing anything here invalidates the
# baseline fingerprints and walls below -- re-measure both if you must.
# ----------------------------------------------------------------------


def build_onepass():
    fmt = RecordFormat()
    cfg = SortConfig(read_buffer=10 * MiB, write_buffer=8 * KiB)
    return {
        "records": 50_000,
        "seed": 2023,
        "fmt": fmt,
        "system": lambda: WiscSort(fmt, config=cfg),
        "background": 0,
        "reps": 3,
    }


def build_mergepass():
    fmt = RecordFormat()
    cfg = SortConfig(read_buffer=96 * KiB, write_buffer=8 * KiB)
    return {
        "records": 200_000,
        "seed": 2023,
        "fmt": fmt,
        "system": lambda: WiscSort(
            fmt, config=cfg, force_merge_pass=True, merge_chunk_entries=1_500
        ),
        "background": 8,
        "reps": 3,
    }


WORKLOADS = {"onepass": build_onepass, "mergepass": build_mergepass}

# ----------------------------------------------------------------------
# Pre-overhaul kernel baseline, measured on the same machine that
# produced the committed BENCH_selfperf.json (seed kernel, commit
# 368ce61).  Fingerprints freeze the simulated results; the overhauled
# kernel must reproduce them (see compare_fingerprints for the one
# documented ULP-level exception).
# ----------------------------------------------------------------------

PRE_PR_BASELINE = {
    "onepass": {
        "wall": 0.115,
        "fingerprint": {
            "total_time": "0x1.37fa32d83a88fp-10",
            "internal_read": "0x1.54c25ffffffa8p+23",
            "internal_written": "0x1.34a4000000015p+22",
            "output_sha256": "d4da462494bcedfe0a5187fd18063486dd69914b1d53c6e294dff2b4b46aec00",
            "tags": {
                "RECORD read": {
                    "busy_time": "0x1.712ca090ef509p-12",
                    "internal_bytes": "0x1.dd0cfffffff4ap+22",
                    "user_bytes": "0x1.312d000000000p+22",
                    "op_count": 618,
                },
                "RUN read": {
                    "busy_time": "0x1.4991bf5b64785p-13",
                    "internal_bytes": "0x1.98ef800000000p+21",
                    "user_bytes": "0x1.e848000000000p+18",
                    "op_count": 1,
                },
                "RUN sort": {
                    "busy_time": "0x1.99328622d186cp-15",
                    "internal_bytes": "0x0.0p+0",
                    "user_bytes": "0x0.0p+0",
                    "op_count": 0,
                },
                "RUN write": {
                    "busy_time": "0x1.4b667d2ef7332p-11",
                    "internal_bytes": "0x1.34a4000000015p+22",
                    "user_bytes": "0x1.312d000000000p+22",
                    "op_count": 618,
                },
            },
        },
    },
    "mergepass": {
        "wall": 15.794,
        "fingerprint": {
            "total_time": "0x1.53b6adff340d8p-6",
            "internal_read": "0x1.6d3d5fffffc27p+25",
            "internal_written": "0x1.c250851eea149p+26",
            "output_sha256": "54a20ed2f98c7ffccace0c672568e28199d6c1e2dd42f02413b0941322af7efb",
            "tags": {
                "MERGE other": {
                    "busy_time": "0x1.3010781bcbf5bp-8",
                    "internal_bytes": "0x0.0p+0",
                    "user_bytes": "0x0.0p+0",
                    "op_count": 0,
                },
                "MERGE read": {
                    "busy_time": "0x1.b1054590abe90p-12",
                    "internal_bytes": "0x1.87b000000224fp+21",
                    "user_bytes": "0x1.6e36000000000p+21",
                    "op_count": 4267,
                },
                "MERGE write": {
                    "busy_time": "0x1.16c50b406a068p-7",
                    "internal_bytes": "0x1.34a4ffffffd1fp+24",
                    "user_bytes": "0x1.312d000000000p+24",
                    "op_count": 2470,
                },
                "RECORD read": {
                    "busy_time": "0x1.07b2298c18592p-8",
                    "internal_bytes": "0x1.dd0cffffff5fcp+24",
                    "user_bytes": "0x1.312d000000000p+24",
                    "op_count": 2470,
                },
                "RUN read": {
                    "busy_time": "0x1.cae463a6908b1p-10",
                    "internal_bytes": "0x1.98ef7ffffffcep+23",
                    "user_bytes": "0x1.e848000000000p+20",
                    "op_count": 134,
                },
                "RUN sort": {
                    "busy_time": "0x1.1f0405f1b2d42p-13",
                    "internal_bytes": "0x0.0p+0",
                    "user_bytes": "0x0.0p+0",
                    "op_count": 0,
                },
                "RUN write": {
                    "busy_time": "0x1.4b31c9876d88bp-10",
                    "internal_bytes": "0x1.6eb000000002cp+21",
                    "user_bytes": "0x1.6e36000000000p+21",
                    "op_count": 134,
                },
                "background write": {
                    "busy_time": "0x1.53b6adff340d8p-6",
                    "internal_bytes": "0x1.69b1c51ee9a08p+26",
                    "user_bytes": "0x1.6800000000000p+26",
                    "op_count": 360,
                },
            },
        },
    },
}


# ----------------------------------------------------------------------
# Fingerprinting and comparison
# ----------------------------------------------------------------------


def fingerprint(machine: Machine, result) -> Dict:
    """Exact (float-hex) digest of one run's simulated results."""
    tags = {}
    for tag, s in sorted(machine.stats.tags.items()):
        tags[tag] = {
            "busy_time": s.busy_time.hex(),
            "internal_bytes": s.internal_bytes.hex(),
            "user_bytes": float(s.user_bytes).hex(),
            "op_count": s.op_count,
        }
    out = machine.fs.open(result.output_name).peek().tobytes()
    return {
        "total_time": result.total_time.hex(),
        "internal_read": float(result.internal_read).hex(),
        "internal_written": float(result.internal_written).hex(),
        "output_sha256": hashlib.sha256(out).hexdigest(),
        "tags": tags,
    }


def _ulps_apart(a_hex: str, b_hex: str) -> int:
    """Distance between two float-hex values in units of last place."""
    pack = struct.pack
    (ia,) = struct.unpack("<q", pack("<d", float.fromhex(a_hex)))
    (ib,) = struct.unpack("<q", pack("<d", float.fromhex(b_hex)))
    return abs(ia - ib)


def compare_fingerprints(ours: Dict, baseline: Dict) -> List[str]:
    """Mismatches between a run fingerprint and a frozen baseline.

    Everything must match exactly -- completion times, per-tag stats,
    output bytes -- except the two machine-global traffic accumulators
    ``internal_read``/``internal_written``, which are allowed an 8-ULP
    slack: the pre-overhaul kernel summed them in an unstable op order
    (its own repeated runs disagree in the last bits), so exact equality
    against it is not well-defined for those fields.
    """
    problems = []
    for field in ("total_time", "output_sha256"):
        if ours[field] != baseline[field]:
            problems.append(f"{field}: {ours[field]} != {baseline[field]}")
    for field in ("internal_read", "internal_written"):
        if _ulps_apart(ours[field], baseline[field]) > 8:
            problems.append(f"{field}: {ours[field]} != {baseline[field]}")
    if set(ours["tags"]) != set(baseline["tags"]):
        problems.append(
            f"tag sets differ: {sorted(ours['tags'])} vs {sorted(baseline['tags'])}"
        )
        return problems
    for tag, ref in baseline["tags"].items():
        got = ours["tags"][tag]
        for field in ("busy_time", "internal_bytes", "user_bytes", "op_count"):
            if got[field] != ref[field]:
                problems.append(f"tags[{tag}].{field}: {got[field]} != {ref[field]}")
    return problems


# ----------------------------------------------------------------------
# Benchmark driver
# ----------------------------------------------------------------------


def run_workload(
    spec: Dict,
    empty_injector: bool = False,
    sanitize: bool = False,
    race_detect: bool = False,
    analyze: bool = False,
) -> Dict:
    """Run one frozen workload ``spec['reps']`` times; keep the best wall."""
    walls = []
    fp = counters = None
    sanitizers = []
    detectors = []
    for _rep in range(spec["reps"]):
        machine = Machine()
        if analyze:
            # Observe-only gate for the critical-path analyzer: the
            # blocked-reason hooks must leave every fingerprint
            # bit-identical to an untraced run.
            from repro.trace import Tracer

            Tracer(analyze=True).install(machine)
        if empty_injector:
            # Zero-overhead-when-idle gate: an installed injector with no
            # events must leave the op stream (and so every fingerprint)
            # bit-identical to a fault-free run.
            from repro.faults import FaultPlan

            machine.install_faults(FaultPlan())
        if sanitize:
            # Observe-only gate: the runtime sanitizer must see zero
            # charge drift and leave every fingerprint bit-identical.
            sanitizers.append(machine.install_sanitizer())
        if race_detect:
            # Observe-only gate for simrace: the vector-clock detector
            # must find no races in the frozen workloads and leave every
            # fingerprint bit-identical.
            detectors.append(machine.install_race_detector())
        data = generate_dataset(
            machine, "input", spec["records"], spec["fmt"], seed=spec["seed"]
        )
        if spec["background"]:
            BackgroundClients(machine, spec["background"], "write").start()
        system = spec["system"]()
        start = time.perf_counter()
        result = system.run(machine, data, validate=False)
        walls.append(time.perf_counter() - start)
        this_fp = fingerprint(machine, result)
        if fp is None:
            fp = this_fp
            counters = collect_counters(machine)
        elif this_fp != fp:
            raise AssertionError("simulator is not run-to-run deterministic")
    for san in sanitizers:
        san.check()  # raises ChargeDriftError on any accounting drift
    for det in detectors:
        det.check()  # raises RaceError if any workload raced
    wall = min(walls)
    return {
        "wall_seconds": wall,
        "walls": walls,
        "sim_seconds": counters["sim_seconds"],
        "sim_per_wall": counters["sim_seconds"] / wall,
        "ops_per_second": counters["ops_completed"] / wall,
        "intervals_per_second": counters["intervals_observed"] / wall,
        "rate_cache_hit_rate": counters["rate_cache_hit_rate"],
        "counters": {k: v for k, v in counters.items()},
        "fingerprint": fp,
    }


def run_all(
    empty_injector: bool = False,
    sanitize: bool = False,
    race_detect: bool = False,
    analyze: bool = False,
) -> Dict:
    report = {
        "schema": 1,
        "vector_kernel": vector_enabled(),
        "workloads": {},
    }
    for name, builder in WORKLOADS.items():
        spec = builder()
        print(f"[{name}] {spec['records']} records, "
              f"{spec['background']} background clients, {spec['reps']} reps"
              + (", empty injector installed" if empty_injector else "")
              + (", sanitizer installed" if sanitize else "")
              + (", race detector installed" if race_detect else "")
              + (", analyze tracer installed" if analyze else "")
              + " ...",
              flush=True)
        res = run_workload(
            spec,
            empty_injector=empty_injector,
            sanitize=sanitize,
            race_detect=race_detect,
            analyze=analyze,
        )
        base = PRE_PR_BASELINE[name]
        problems = compare_fingerprints(res["fingerprint"], base["fingerprint"])
        res["results_match_pre_pr"] = not problems
        res["pre_pr_wall_seconds"] = base["wall"]
        res["speedup_vs_pre_pr"] = base["wall"] / res["wall_seconds"]
        report["workloads"][name] = res
        status = "identical" if not problems else f"MISMATCH: {problems}"
        print(
            f"[{name}] wall {res['wall_seconds']:.3f}s "
            f"(pre-PR {base['wall']:.3f}s, {res['speedup_vs_pre_pr']:.2f}x), "
            f"{res['ops_per_second']:,.0f} ops/s, "
            f"rate-memo hit {res['rate_cache_hit_rate'] * 100:.1f}%, "
            f"results {status}"
        )
        if problems:
            raise AssertionError(f"{name}: simulated results changed: {problems}")
    return report


def check_against(report: Dict, committed_path: Path, factor: float = 2.0) -> int:
    """CI gate: fail when a workload got > ``factor`` slower than committed."""
    committed = json.loads(committed_path.read_text())
    failures = 0
    for name, res in report["workloads"].items():
        ref = committed["workloads"].get(name)
        if ref is None:
            print(f"[check] {name}: no committed baseline, skipping")
            continue
        budget = ref["wall_seconds"] * factor
        verdict = "ok" if res["wall_seconds"] <= budget else "REGRESSION"
        print(
            f"[check] {name}: {res['wall_seconds']:.3f}s vs committed "
            f"{ref['wall_seconds']:.3f}s (budget {budget:.3f}s) -> {verdict}"
        )
        if res["wall_seconds"] > budget:
            failures += 1
    return failures


def compare_reports(path_a: Path, path_b: Path) -> int:
    """Cross-kernel-path gate: two reports must share every fingerprint.

    Unlike :func:`compare_fingerprints` (which tolerates an 8-ULP slack
    against the *pre-overhaul* kernel's unstable accumulators), both
    reports here come from the current kernel, so the comparison is
    plain dict equality: every float-hex digit, every op count, every
    output hash.  Also prints both paths' ops/s so CI logs publish the
    scalar and vector throughput side by side.
    """
    rep_a = json.loads(path_a.read_text())
    rep_b = json.loads(path_b.read_text())
    failures = 0
    names = sorted(set(rep_a["workloads"]) | set(rep_b["workloads"]))
    for name in names:
        wa = rep_a["workloads"].get(name)
        wb = rep_b["workloads"].get(name)
        if wa is None or wb is None:
            print(f"[compare] {name}: present in only one report")
            failures += 1
            continue
        same = wa["fingerprint"] == wb["fingerprint"]
        print(
            f"[compare] {name}: "
            f"{path_a.name} ({'vector' if rep_a.get('vector_kernel') else 'scalar'}) "
            f"{wa['ops_per_second']:,.0f} ops/s vs "
            f"{path_b.name} ({'vector' if rep_b.get('vector_kernel') else 'scalar'}) "
            f"{wb['ops_per_second']:,.0f} ops/s -> "
            f"fingerprints {'identical' if same else 'DIFFER'}"
        )
        if not same:
            for field in ("total_time", "output_sha256",
                          "internal_read", "internal_written"):
                if wa["fingerprint"][field] != wb["fingerprint"][field]:
                    print(f"[compare]   {field}: "
                          f"{wa['fingerprint'][field]} != "
                          f"{wb['fingerprint'][field]}")
            failures += 1
    return failures


def check_min_speedup(report: Dict, workload: str, factor: float) -> int:
    """Throughput gate vs the frozen pre-overhaul kernel baseline."""
    res = report["workloads"][workload]
    speedup = res["speedup_vs_pre_pr"]
    verdict = "ok" if speedup >= factor else "TOO SLOW"
    print(
        f"[speedup] {workload}: {speedup:.2f}x vs pre-overhaul kernel "
        f"(gate >= {factor:.1f}x) -> {verdict}"
    )
    return 0 if speedup >= factor else 1


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        type=Path,
        default=None,
        help="where to write the results JSON (default: repo root; "
        "with --check the report is only written when this is given "
        "explicitly)",
    )
    parser.add_argument(
        "--check",
        type=Path,
        default=None,
        metavar="BASELINE_JSON",
        help="compare walls against a committed BENCH_selfperf.json and "
        "exit non-zero on a >2x regression (CI gate)",
    )
    parser.add_argument(
        "--compare",
        type=Path,
        nargs=2,
        default=None,
        metavar=("A_JSON", "B_JSON"),
        help="compare the fingerprint blocks of two previously written "
        "reports (e.g. a scalar-path and a vector-path run) and exit "
        "non-zero unless they are bit-identical; runs no workloads",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="FACTOR",
        help="exit non-zero unless the MergePass speedup vs the frozen "
        "pre-overhaul kernel baseline is at least FACTOR",
    )
    parser.add_argument(
        "--empty-injector",
        action="store_true",
        help="install a fault injector with an empty FaultPlan before "
        "every run; fingerprints must still match the frozen baselines "
        "(the zero-overhead-when-idle guarantee of repro.faults)",
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help="install the runtime SimSanitizer before every run; the "
        "charge audit must report zero drift and fingerprints must "
        "still match the frozen baselines (observe-only guarantee of "
        "repro.analysis.sanitizer)",
    )
    parser.add_argument(
        "--race-detect",
        action="store_true",
        help="install the simrace vector-clock race detector before "
        "every run; it must report zero races and fingerprints must "
        "still match the frozen baselines (observe-only guarantee of "
        "repro.analysis.race)",
    )
    parser.add_argument(
        "--analyze",
        action="store_true",
        help="install an analyze-armed Tracer (critical-path "
        "blocked-reason hooks) before every run; fingerprints must "
        "still match the frozen baselines (observe-only guarantee of "
        "repro.trace.analyze)",
    )
    args = parser.parse_args(argv)
    if args.compare is not None:
        failures = compare_reports(args.compare[0], args.compare[1])
        if failures:
            print(f"[compare] FAILED: {failures} workload(s) differ")
            return 1
        print("[compare] kernel paths bit-identical")
        return 0
    report = run_all(
        empty_injector=args.empty_injector,
        sanitize=args.sanitize,
        race_detect=args.race_detect,
        analyze=args.analyze,
    )
    failures = 0
    if args.check is not None:
        regressed = check_against(report, args.check)
        if regressed:
            print(f"[check] FAILED: {regressed} workload(s) regressed >2x")
            failures += regressed
        else:
            print("[check] all workloads within budget")
    if args.min_speedup is not None:
        failures += check_min_speedup(report, "mergepass", args.min_speedup)
    if args.output is not None or args.check is None:
        output = args.output
        if output is None:
            output = Path(__file__).resolve().parent.parent / "BENCH_selfperf.json"
        output.write_text(json.dumps(report, indent=1) + "\n")
        print(f"wrote {output}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
