"""Figure 11: sorting on emulated future BRAID devices (100M records).

Paper:
* 11a BD-Device (slow random reads): EMS is best; WiscSort pays a huge
  price for relying on random reads in both phases; in-place sample sort
  sits in between (one-time random-access cost).
* 11b BRD-Device (rand == seq == write): OnePass is best; sample sort
  beats both EMS and MergePass; EMS (which writes everything twice) is
  slowest; MergePass with and without interference-aware scheduling
  perform similarly (no I property).
* 11c BARD-Device (writes 500 ns/line slower): writes dominate; OnePass
  achieves the lowest time; sample sort beats MergePass; EMS is ~2x
  slower than WiscSort; IO-overlap ~= no-overlap (no I property).
"""

from __future__ import annotations

from benchmarks.conftest import parse_ms, run_once
from repro.bench import fig11_future_devices


def test_fig11_future_devices(benchmark, bench_scale):
    table = run_once(benchmark, fig11_future_devices, scale=bench_scale)
    print()
    print(table.render())

    times = {}
    for device, system, ms in table.rows:
        times[(device, system)] = parse_ms(ms)

    def t(device, system):
        return times[(device, system)]

    # --- 11a: BD-Device ---
    assert t("bd-device", "ems") < t("bd-device", "sample sort")
    assert t("bd-device", "sample sort") < t("bd-device", "wiscsort onepass")
    assert t("bd-device", "ems") < t("bd-device", "wiscsort mergepass")
    # WiscSort pays a *huge* price: >= 2x EMS.
    assert t("bd-device", "wiscsort onepass") >= 2.0 * t("bd-device", "ems")

    # --- 11b: BRD-Device ---
    assert t("brd-device", "wiscsort onepass") < t("brd-device", "sample sort")
    assert t("brd-device", "sample sort") < t("brd-device", "wiscsort mergepass")
    assert t("brd-device", "wiscsort mergepass") < t("brd-device", "ems")
    # No interference -> IO overlap is at least as good as no overlap.
    assert (
        t("brd-device", "wiscsort mergepass io-overlap")
        <= t("brd-device", "wiscsort mergepass") * 1.05
    )

    # --- 11c: BARD-Device ---
    assert t("bard-device", "wiscsort onepass") == min(
        v for (d, _), v in times.items() if d == "bard-device"
    )
    assert t("bard-device", "sample sort") < t("bard-device", "wiscsort mergepass")
    ems_vs_wisc = t("bard-device", "ems") / t("bard-device", "wiscsort onepass")
    assert 1.8 <= ems_vs_wisc <= 3.2
    assert (
        t("bard-device", "wiscsort mergepass io-overlap")
        <= t("bard-device", "wiscsort mergepass") * 1.05
    )
