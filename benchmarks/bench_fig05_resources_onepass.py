"""Figure 5: resource usage of EMS vs WiscSort OnePass (40 GB sort).

Paper: both systems run each I/O operation at (near) the peak bandwidth
of its access class -- the thread-pool controller's job -- and WiscSort
consumes less total traffic thanks to strided key reads and random value
reads.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench import fig05_resources_onepass


def test_fig05_resources_onepass(benchmark, bench_scale):
    table = run_once(benchmark, fig05_resources_onepass, scale=bench_scale)
    print()
    print(table.render())

    rows = [dict(zip(table.headers, row)) for row in table.rows]

    # Every I/O phase runs at >= 85% of its access-class peak bandwidth.
    for r in rows:
        eff = float(r["peak-class eff."].rstrip("%")) / 100
        assert eff >= 0.85, (r["system"], r["tag"], eff)

    def internal(system):
        return sum(
            float(r["internal MB"]) for r in rows if r["system"] == system
        )

    # WiscSort moves less device traffic than EMS in total.
    assert internal("wiscsort-onepass") < internal("ems")

    # EMS moves the dataset 4x (read+write in run and merge); WiscSort
    # ~3.2x internal (strided keys + amplified random values + one write).
    dataset_mb = 40_000 / bench_scale  # 40 GB = 40,000 MB, scaled
    assert internal("ems") >= 3.9 * dataset_mb
    assert internal("wiscsort-onepass") <= 3.5 * dataset_mb
