#!/usr/bin/env python3
"""Scale-out: a shared 4-shard cluster serving two tenants' sort jobs.

Builds a :class:`repro.Cluster` of four PMEM shards behind one
simulation engine, submits eight WiscSort jobs from two tenants through
the :class:`repro.JobScheduler` under a cluster-wide DRAM pool, and
compares FIFO against fair-share admission: fair-share rotates tenants,
so no tenant's jobs starve behind a burst from the other.

Run:  python examples/cluster_jobs.py
"""

from __future__ import annotations

from repro import Cluster, JobScheduler
from repro.metrics import render_job_table, render_shard_table


def run_policy(policy: str):
    cluster = Cluster(shards=4, dram_budget=64 * 1024 * 1024)
    scheduler = JobScheduler(cluster, policy=policy)
    for j in range(8):
        scheduler.submit(
            f"job{j:02d}",
            system="wiscsort",
            n_records=20_000,
            seed=42 + j,
            # tenant "alice" submits a burst first, "bob" trails behind
            tenant="alice" if j < 5 else "bob",
        )
    jobs = scheduler.run()
    return cluster, jobs


def main() -> None:
    for policy in ("fifo", "fair"):
        cluster, jobs = run_policy(policy)
        print(f"=== policy: {policy} ===")
        print(render_job_table(jobs))
        print()
    print(render_shard_table(cluster))


if __name__ == "__main__":
    main()
