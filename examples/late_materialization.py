#!/usr/bin/env python3
"""Late materialization with IndexMaps (paper Sec 5).

"WiscSort converts a row-oriented database to a column-oriented one on
the fly ... a range of sorted key values can be generated on demand
with the help of IndexMap files; or two IndexMap files can be used to
perform joins on relations without moving entire values."

This example builds sorted indexes over two relations and answers three
queries without ever fully sorting either relation:

1. TOP-K:      the 100 smallest-keyed rows;
2. range scan: all rows in a key range;
3. join:       an inner join materialising only matching rows.

Run:  python examples/late_materialization.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Machine,
    RecordFormat,
    SortedIndex,
    WiscSort,
    indexmap_join,
    pmem_profile,
)
from repro.units import fmt_bytes, fmt_seconds

FMT = RecordFormat(key_size=8, value_size=92, pointer_size=5)


def build_relation(machine: Machine, name: str, n: int, key_space: int, seed: int):
    """Rows with big-endian integer keys drawn from a shared key space
    (so the two relations actually join)."""
    rng = np.random.default_rng(seed)
    rows = np.zeros((n, FMT.record_size), dtype=np.uint8)
    keys = rng.integers(0, key_space, size=n, dtype=np.uint64)
    rows[:, :8] = keys.byteswap().view(np.uint8).reshape(n, 8)
    rows[:, 8:] = rng.integers(0, 256, size=(n, 92), dtype=np.uint8)
    f = machine.fs.create(name)
    f.poke(0, rows.reshape(-1))
    return f


def main() -> None:
    machine = Machine(profile=pmem_profile())
    facts = build_relation(machine, "facts", 200_000, key_space=1 << 20, seed=1)
    dims = build_relation(machine, "dims", 20_000, key_space=1 << 20, seed=2)

    facts_index = SortedIndex(machine, facts, FMT).build()
    dims_index = SortedIndex(machine, dims, FMT).build()
    print(f"index build: facts {fmt_seconds(facts_index.build_time)}, "
          f"dims {fmt_seconds(dims_index.build_time)}\n")

    top = facts_index.top_k(100)
    print(f"TOP-100        : {fmt_seconds(top.elapsed)} "
          f"(gathered {fmt_bytes(top.bytes_gathered)})")

    low = int(0).to_bytes(8, "big")
    high = int(1 << 14).to_bytes(8, "big")
    scan = facts_index.range_scan(low, high)
    print(f"range scan     : {fmt_seconds(scan.elapsed)} "
          f"({scan.records.shape[0]} rows, {fmt_bytes(scan.bytes_gathered)})")

    join = indexmap_join(facts_index, dims_index)
    print(f"indexmap join  : {fmt_seconds(join.elapsed)} "
          f"({join.matches} matches)")

    # Compare against the eager plan: fully sort the fact table first.
    machine2 = Machine(profile=pmem_profile())
    facts2 = build_relation(machine2, "facts", 200_000, key_space=1 << 20, seed=1)
    full = WiscSort(FMT).run(machine2, facts2, validate=False)
    lazy_total = facts_index.build_time + top.elapsed + scan.elapsed
    print(f"\neager full sort of facts: {fmt_seconds(full.total_time)}")
    print(f"index + both point queries: {fmt_seconds(lazy_total)} "
          f"({full.total_time / lazy_total:.1f}x cheaper)")


if __name__ == "__main__":
    main()
