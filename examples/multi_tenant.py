#!/usr/bin/env python3
"""Sorting while other tenants hammer the device (paper Sec 4.4).

A BRAID device in production is shared: other processes issue reads and
writes the sorter cannot control.  This example subjects WiscSort and
external merge sort to background 4 KiB reader/writer clients of
increasing intensity and prints the slowdown curves of Fig 10.

Run:  python examples/multi_tenant.py
"""

from __future__ import annotations

from repro import (
    BackgroundClients,
    ExternalMergeSort,
    Machine,
    RecordFormat,
    WiscSort,
    generate_dataset,
    pmem_profile,
)


def timed_sort(system, kind: str, clients: int, n: int = 50_000) -> float:
    machine = Machine(profile=pmem_profile())
    data = generate_dataset(machine, "input", n, RecordFormat(), seed=5)
    if clients:
        BackgroundClients(machine, clients, kind).start()
    return system.run(machine, data, validate=False).total_time


def main() -> None:
    fmt = RecordFormat()
    systems = {"wiscsort": WiscSort(fmt), "ems": ExternalMergeSort(fmt)}
    print(f"{'kind':6s} {'clients':>7s} " +
          " ".join(f"{name + ' slowdown':>20s}" for name in systems))
    for kind in ("read", "write"):
        baselines = {
            name: timed_sort(system, kind, 0)
            for name, system in systems.items()
        }
        for clients in (0, 1, 2, 4, 8):
            cells = []
            for name, system in systems.items():
                t = timed_sort(system, kind, clients)
                cells.append(f"{t / baselines[name]:19.2f}x")
            print(f"{kind:6s} {clients:7d} " + " ".join(cells))
    print(
        "\nBackground writers hurt far more than readers (PMEM writes do\n"
        "not scale and interfere with reads), yet WiscSort retains its\n"
        "advantage at every intensity -- the paper's Fig 10 conclusion."
    )


if __name__ == "__main__":
    main()
