#!/usr/bin/env python3
"""Choosing a sorting strategy for a future BRAID device.

The BRAID model (Sec 2.3) spans devices with very different property
mixes.  This example calibrates each device with the microbenchmark
suite (Sec 3.8), runs every sorting strategy on it, and reports which
one a deployment should pick -- reproducing the Sec 4.5 conclusions:

* poor random reads (BD)   -> classic external merge sort;
* symmetric fast (BRD)     -> WiscSort OnePass;
* write-asymmetric (BARD)  -> WiscSort (writes dominate, halve them).

Run:  python examples/future_devices.py
"""

from __future__ import annotations

from repro import HostModel, api, calibrate_device, get_profile
from repro.units import fmt_seconds

#: registry name -> display name
STRATEGIES = {
    "ems": "external merge sort",
    "sample-sort": "in-place sample sort",
    "wiscsort": "wiscsort",
}


def best_strategy(device_name: str, n_records: int):
    times = {}
    for system, label in STRATEGIES.items():
        result = api.sort(api.RunOptions(
            records=n_records, system=system, device=device_name,
            seed=1, validate=False,
        ))
        times[label] = result.total_time
    return times


def main() -> None:
    n = 50_000
    host = HostModel()
    for device_name in ("pmem", "bd-device", "brd-device", "bard-device"):
        profile = get_profile(device_name)()
        calibration = calibrate_device(profile, host)
        print(f"=== {device_name} ===")
        print(f"  {profile.describe()}")
        print(f"  calibrated pools: seq-read={calibration.seq_read.best_threads}, "
              f"rand-read={calibration.rand_read.best_threads}, "
              f"write={calibration.write.best_threads}")
        times = best_strategy(device_name, n)
        winner = min(times, key=times.get)
        for name, t in sorted(times.items(), key=lambda kv: kv[1]):
            marker = "  <-- best" if name == winner else ""
            print(f"  {name:22s} {fmt_seconds(t)}{marker}")
        print()


if __name__ == "__main__":
    main()
