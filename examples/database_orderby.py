#!/usr/bin/env python3
"""ORDER BY on a non-indexed column, the paper's motivating workload.

Relational databases fall back to external sorting for ORDER BY queries
on non-indexed keys whose input exceeds memory (paper Sec 1).  This
example builds a row-oriented "orders" table on simulated PMEM, then
executes

    SELECT * FROM orders ORDER BY order_total;

with WiscSort, under a DRAM budget small enough that the engine must
spill -- and shows how key-value separation keeps the spill cheap.

Run:  python examples/database_orderby.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ExternalMergeSort,
    Machine,
    RecordFormat,
    SortConfig,
    WiscSort,
    pmem_profile,
)
from repro.units import MiB, fmt_bytes, fmt_seconds

#: Row layout: 8B order_total (big-endian, the sort key) followed by a
#: 120B payload (customer, address, line items...).  Row-oriented binary
#: formats like this are exactly the paper's target (Sec 2.5).
ROW_FORMAT = RecordFormat(key_size=8, value_size=120, pointer_size=5)


def build_orders_table(machine: Machine, n_rows: int):
    """Materialise a table whose sort key is uniformly distributed."""
    rng = np.random.default_rng(7)
    rows = np.zeros((n_rows, ROW_FORMAT.record_size), dtype=np.uint8)
    # order_total as big-endian u64 cents: byte order == numeric order.
    totals = rng.integers(100, 5_000_000, size=n_rows, dtype=np.uint64)
    rows[:, :8] = totals.byteswap().view(np.uint8).reshape(n_rows, 8)
    rows[:, 8:] = rng.integers(0, 256, size=(n_rows, 120), dtype=np.uint8)
    table = machine.fs.create("orders.tbl")
    table.poke(0, rows.reshape(-1))
    return table


def order_by(system_cls, n_rows: int, dram_budget: int, **kwargs):
    machine = Machine(profile=pmem_profile(), dram_budget=dram_budget)
    table = build_orders_table(machine, n_rows)
    config = SortConfig(read_buffer=2 * MiB, write_buffer=1 * MiB)
    system = system_cls(ROW_FORMAT, config=config, **kwargs)
    result = system.run(machine, table)
    return system, result


def main() -> None:
    n_rows = 300_000
    # DRAM holds only ~1.5 MB beyond the buffers: WiscSort's 13 B/row
    # IndexMap (3.9 MB total) does not fit, forcing MergePass -- the
    # regime where key-value separation matters most.
    dram_budget = 3 * MiB

    print(f"table: {n_rows} rows x {ROW_FORMAT.record_size}B "
          f"({fmt_bytes(n_rows * ROW_FORMAT.record_size)}), "
          f"DRAM budget {fmt_bytes(dram_budget)}\n")
    print("query: SELECT * FROM orders ORDER BY order_total;\n")

    wisc_system, wisc = order_by(WiscSort, n_rows, dram_budget)
    _, ems = order_by(ExternalMergeSort, n_rows, dram_budget)

    pass_used = "MergePass" if wisc_system.used_merge_pass else "OnePass"
    print(f"WiscSort ({pass_used}): {fmt_seconds(wisc.total_time)}  "
          f"writes {fmt_bytes(wisc.user_written)}")
    print(f"External merge sort:  {fmt_seconds(ems.total_time)}  "
          f"writes {fmt_bytes(ems.user_written)}")
    print(f"\nWiscSort answers the query {ems.total_time / wisc.total_time:.2f}x "
          "faster because its spill files hold 13-byte key-pointer entries "
          "instead of 128-byte rows.")


if __name__ == "__main__":
    main()
