#!/usr/bin/env python3
"""Quickstart: sort a sortbenchmark dataset with WiscSort.

Creates a simulated PMEM machine, generates 100k gensort-style records
(10 B keys, 90 B values), sorts them with WiscSort and with the
external-merge-sort baseline, validates both outputs byte-exactly, and
prints the phase breakdown and speedup.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ExternalMergeSort,
    Machine,
    RecordFormat,
    WiscSort,
    generate_dataset,
    pmem_profile,
)
from repro.units import fmt_bandwidth, fmt_bytes, fmt_seconds


def run_system(system, n_records: int):
    """One sorting run on a fresh simulated machine."""
    machine = Machine(profile=pmem_profile())
    fmt = RecordFormat()  # 10B key + 90B value, 5B pointers
    input_file = generate_dataset(machine, "input", n_records, fmt, seed=42)
    result = system.run(machine, input_file)  # validates the output
    return machine, result


def main() -> None:
    n = 100_000
    print(f"sorting {n} records ({fmt_bytes(n * 100)}) on simulated PMEM\n")

    machine, wisc = run_system(WiscSort(), n)
    _, ems = run_system(ExternalMergeSort(), n)

    for result in (wisc, ems):
        print(f"{result.system}")
        print(f"  total simulated time : {fmt_seconds(result.total_time)}")
        for tag, busy in result.phases.items():
            print(f"    {tag:12s} {fmt_seconds(busy)}")
        print(f"  device reads (internal) : {fmt_bytes(result.internal_read)}")
        print(f"  device writes           : {fmt_bytes(result.internal_written)}")
        print(f"  output validated        : {result.validated}")
        print()

    print(f"WiscSort speedup over external merge sort: "
          f"{ems.total_time / wisc.total_time:.2f}x")
    print(f"peak read bandwidth observed: "
          f"{fmt_bandwidth(machine.stats.peak_read_bw())}")


if __name__ == "__main__":
    main()
