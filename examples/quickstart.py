#!/usr/bin/env python3
"""Quickstart: sort a sortbenchmark dataset with WiscSort.

Uses the one-call programmatic facade, :func:`repro.api.sort`: each call
builds a simulated PMEM machine, generates 100k gensort-style records
(10 B keys, 90 B values), sorts them with the named system, and
validates the output byte-exactly.  Prints the phase breakdown and the
WiscSort speedup over the external-merge-sort baseline.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import api
from repro.units import fmt_bandwidth, fmt_bytes, fmt_seconds


def main() -> None:
    n = 100_000
    print(f"sorting {n} records ({fmt_bytes(n * 100)}) on simulated PMEM\n")

    base = api.RunOptions(records=n, device="pmem", seed=42)
    wisc = api.sort(base.replace(system="wiscsort"))
    ems = api.sort(base.replace(system="ems"))

    for result in (wisc, ems):
        print(f"{result.system}")
        print(f"  total simulated time : {fmt_seconds(result.total_time)}")
        for tag, busy in result.phases.items():
            print(f"    {tag:12s} {fmt_seconds(busy)}")
        print(f"  device reads (internal) : {fmt_bytes(result.internal_read)}")
        print(f"  device writes           : {fmt_bytes(result.internal_written)}")
        print(f"  output validated        : {result.validated}")
        print()

    print(f"WiscSort speedup over external merge sort: "
          f"{ems.total_time / wisc.total_time:.2f}x")
    machine = wisc.extras["machine"]
    print(f"peak read bandwidth observed: "
          f"{fmt_bandwidth(machine.stats.peak_read_bw())}")


if __name__ == "__main__":
    main()
