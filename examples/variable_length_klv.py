#!/usr/bin/env python3
"""Sorting variable-length records (Key-Length-Value encoding).

Real key-value workloads rarely have fixed-size values; the paper
handles them with KLV encoding (Sec 2.5, 3.7.3): a fixed-size key, a
length field, then the value.  The IndexMap gains a vlength attribute
and the RUN phase becomes a serial header walk (value lengths are only
discoverable by reading each header).

This example sorts a workload with values between 16 B and 400 B --
the skew found in production KV stores (small keys, mixed values) --
and shows the serial-scan cost showing up in "RUN read".

Run:  python examples/variable_length_klv.py
"""

from __future__ import annotations

from repro import (
    KLVFormat,
    Machine,
    WiscSortKLV,
    generate_klv_dataset,
    pmem_profile,
)
from repro.units import fmt_bytes, fmt_seconds


def main() -> None:
    fmt = KLVFormat(key_size=10, len_size=4, pointer_size=5)
    machine = Machine(profile=pmem_profile())
    n = 50_000
    data = generate_klv_dataset(
        machine, "kvstore.dump", n, fmt, min_value=16, max_value=400, seed=3
    )
    print(f"input: {n} KLV records, {fmt_bytes(data.size)} "
          f"(values 16-400B, 10B keys)\n")

    system = WiscSortKLV(fmt)
    result = system.run(machine, data)  # validates: sorted permutation

    print(f"{result.system}: {fmt_seconds(result.total_time)}")
    for tag, busy in result.phases.items():
        share = 100 * busy / result.total_time
        print(f"  {tag:12s} {fmt_seconds(busy):>12s}  ({share:4.1f}%)")
    print(f"\npass used: {'MergePass' if system.used_merge_pass else 'OnePass'}")
    print(f"records validated: {result.n_records}")
    print("\nNote the serial RUN read: with unknown value lengths a single "
          "reader thread must walk the headers (Sec 3.7.3), so the gather "
          "runs at single-thread sequential bandwidth.")


if __name__ == "__main__":
    main()
